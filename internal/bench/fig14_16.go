package bench

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// joinData builds a pair of AU-relations for the join microbenchmarks:
// `rows` tuples over a domain of 1000 with `cellProb` uncertainty on the
// join attribute, ranges spanning `rangeFrac` of the domain.
func joinData(rows int, cellProb, rangeFrac float64, seed int64) core.DB {
	t1, t2 := synth.JoinPair(rows, 1000, seed)
	cfgI := synth.InjectConfig{
		CellProb: cellProb, MaxAlts: 8, RangeFrac: rangeFrac,
		EligibleCols: []int{0, 1}, Seed: seed + 1,
	}
	x := synth.Inject(bag.DB{"t1": t1, "t2": t2}, cfgI)
	return core.DB{"t1": translate.XDB(x["t1"]), "t2": translate.XDB(x["t2"])}
}

func equiJoinPlan() ra.Node {
	return &ra.Join{
		Left:  &ra.Scan{Table: "t1"},
		Right: &ra.Scan{Table: "t2"},
		Cond:  expr.Eq(expr.Col(0, "t1.a0"), expr.Col(2, "t2.a0")),
	}
}

// Fig14 reproduces Figures 14a/14b: runtime (a) and possible result size
// (b) of a single equality join, varying the input size, for the
// un-optimized join and compressed variants.
func Fig14(ctx context.Context, cfg Config) (*Table, error) {
	sizes := []int{5000, 10000, 20000}
	withNaive := false
	if cfg.quickish() {
		sizes = []int{500, 1000, 2000}
		withNaive = true
	}
	if cfg.Tiny {
		sizes = []int{200, 400}
	}
	cts := []int{4, 32, 256, 1024}
	if cfg.Tiny {
		cts = []int{4, 256}
	}
	headers := []string{"rows", "mode", "seconds", "possible size"}
	t := &Table{
		ID:      "fig14",
		Title:   "join optimization: runtime (14a) and possible tuple mass (14b)",
		Headers: headers,
		Notes: []string{
			"3% uncertainty on the join attribute, ranges 2% of the domain",
			"NoCpr = exact semantics (un-optimized result); NaiveNested additionally forces the quadratic nested loop",
		},
	}
	for _, rows := range sizes {
		db := joinData(rows, 0.03, 0.02, cfg.Seed)
		plan := equiJoinPlan()
		type mode struct {
			label string
			opts  core.Options
		}
		modes := []mode{{"NoCpr", core.Options{}}}
		if withNaive {
			modes = append(modes, mode{"NaiveNested", core.Options{NaiveJoin: true}})
		}
		for _, ct := range cts {
			modes = append(modes, mode{fmt.Sprintf("CT=%d", ct), core.Options{JoinCompression: ct}})
		}
		for _, m := range modes {
			var res *core.Relation
			dt, err := timeIt(func() error {
				r, e := core.Exec(ctx, plan, db, cfg.opts(m.opts))
				res = r
				return e
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", rows), m.label, secs(dt),
				fmt.Sprintf("%d", res.PossibleSize()),
			})
		}
	}
	return t, nil
}

// Fig16 reproduces the multi-join table (Figure 16): chains of 1-4
// equality joins under different compression sizes and uncertainty levels.
func Fig16(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(4000, 500)
	comps := []int{4, 16, 64, 256, 0} // 0 = no compression
	uncs := []float64{0.03, 0.10}
	if cfg.Tiny {
		comps = []int{16, 0}
		uncs = []float64{0.03}
	}
	t := &Table{
		ID:      "fig16",
		Title:   "multi-join performance (seconds)",
		Headers: []string{"compression", "uncertainty", "1 join", "2 joins", "3 joins", "4 joins"},
		Notes:   []string{fmt.Sprintf("%d rows per table, ranges 7.5%% of the domain", rows)},
	}
	// Pre-build 5 tables t0..t4 for up to 4 chained joins.
	tables := bag.DB{}
	for i := 0; i < 5; i++ {
		a, _ := synth.JoinPair(rows, int64(rows), cfg.Seed+int64(i))
		tables[fmt.Sprintf("j%d", i)] = a
	}
	for _, unc := range uncs {
		x := synth.Inject(tables, synth.InjectConfig{
			CellProb: unc, MaxAlts: 8, RangeFrac: 0.075,
			EligibleCols: []int{0, 1}, Seed: cfg.Seed + 9,
		})
		audb := core.DB{}
		for n, xr := range x {
			audb[n] = translate.XDB(xr)
		}
		for _, comp := range comps {
			label := "none"
			if comp > 0 {
				label = fmt.Sprintf("%d", comp)
			}
			row := []string{label, fmt.Sprintf("%.0f%%", unc*100)}
			for joins := 1; joins <= 4; joins++ {
				plan := chainJoinPlan(joins)
				dt, err := timeIt(func() error {
					_, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{JoinCompression: comp}))
					return e
				})
				if err != nil {
					return nil, err
				}
				row = append(row, secs(dt))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// chainJoinPlan joins j0.a1 = j1.a0, j1.a1 = j2.a0, ... (no overlap of
// join attributes between steps, as in the paper).
func chainJoinPlan(joins int) ra.Node {
	var cur ra.Node = &ra.Scan{Table: "j0"}
	width := 2
	for i := 1; i <= joins; i++ {
		cur = &ra.Join{
			Left:  cur,
			Right: &ra.Scan{Table: fmt.Sprintf("j%d", i)},
			Cond:  expr.Eq(expr.Col(width-1, ""), expr.Col(width, "")),
		}
		width += 2
	}
	return cur
}
