package bench

import (
	"context"
	"fmt"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// Opt is not a paper figure: it measures what the logical optimizer
// (internal/opt) buys on the native engine. Two workloads:
//
//   - filter⋈: a selective WHERE on one side of an equi-join, written
//     above the join the way SQL compiles it. Unoptimized, the join runs
//     on the full inputs and the filter discards most of the output;
//     optimized, the filter pushes below the join and the inputs are
//     pruned to the referenced columns.
//   - where-join: the same join written as `FROM t1, t2 WHERE t1.a0 =
//     t2.a0 AND ...`. Unoptimized this is a quadratic cross product with
//     a selection on top; optimized, the equality conjunct moves into
//     the join condition, unlocking the hybrid hash join.
//
// Both executions run through the session API; results are checked
// identical before any timing is reported.
func Opt(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(6000, 1500)
	// A dense join (domain ~ rows/4) makes the unfiltered join output a
	// real cost; 3% attribute uncertainty on the join column exercises
	// the nested-loop quadrant of the hybrid join on both paths.
	domain := int64(rows / 4)
	if domain < 8 {
		domain = 8
	}
	db := audb.New()
	t1, t2 := synth.JoinPair(rows, domain, cfg.Seed)
	x := synth.Inject(bag.DB{"t1": t1, "t2": t2}, synth.InjectConfig{
		CellProb: 0.03, MaxAlts: 8, RangeFrac: 0.02,
		EligibleCols: []int{0}, Seed: cfg.Seed + 1,
	})
	db.AddRelation("t1", translate.XDB(x["t1"]))
	db.AddRelation("t2", translate.XDB(x["t2"]))

	// a1 is uniform over [1, domain]; <= domain/20 keeps ~5%.
	sel := domain / 20
	if sel < 1 {
		sel = 1
	}
	workloads := []struct {
		label string
		query string
	}{
		{"filter-join", fmt.Sprintf(
			`SELECT t1.a1, t2.a1 FROM t1 JOIN t2 ON t1.a0 = t2.a0 WHERE t1.a1 <= %d`, sel)},
		{"where-join", fmt.Sprintf(
			`SELECT t1.a1, t2.a1 FROM t1, t2 WHERE t1.a0 = t2.a0 AND t1.a1 <= %d`, sel)},
	}

	t := &Table{
		ID:      "opt",
		Title:   "logical optimizer: unoptimized vs optimized plans (native engine)",
		Headers: []string{"workload", "unopt_s", "opt_s", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d rows/side, join domain %d, ~5%% filter selectivity, 3%% uncertain join keys", rows, domain),
			"results verified identical before timing; WithOptimizer(OptimizerOff) is the baseline",
		},
	}
	for _, w := range workloads {
		var unoptRes, optRes *core.Relation
		unopt, err := timeIt(func() error {
			r, e := db.QueryContext(ctx, w.query,
				audb.WithOptimizer(audb.OptimizerOff), audb.WithWorkers(cfg.Workers))
			unoptRes = r
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("%s unoptimized: %w", w.label, err)
		}
		opt, err := timeIt(func() error {
			r, e := db.QueryContext(ctx, w.query,
				audb.WithOptimizer(audb.OptimizerOn), audb.WithWorkers(cfg.Workers))
			optRes = r
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("%s optimized: %w", w.label, err)
		}
		if unoptRes.Sort().String() != optRes.Sort().String() {
			return nil, fmt.Errorf("%s: optimized result differs from unoptimized", w.label)
		}
		t.Rows = append(t.Rows, []string{
			w.label, secs(unopt), secs(opt), ratio(unopt, opt),
		})
	}
	return t, nil
}
