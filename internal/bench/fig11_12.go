package bench

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/baselines"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/tpch"
	"github.com/audb/audb/internal/types"
)

// chainedAggPlan builds a query with n chained aggregation operators over
// lineitem: level 1 sums quantities per supplier; every further level
// halves the grouping key and re-aggregates, so each operator does real
// work (systems without subquery support materialize each level, as the
// paper notes for Trio).
func chainedAggPlan(n int) ra.Node {
	var cur ra.Node = &ra.Agg{
		Child:   &ra.Scan{Table: "lineitem"},
		GroupBy: []int{1}, // l_suppkey
		Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(2, "l_quantity"), Name: "s"}},
	}
	for i := 1; i < n; i++ {
		// Halve the key domain, then re-aggregate.
		half := &ra.Project{
			Child: cur,
			Cols: []ra.ProjCol{
				{E: expr.Div(expr.Add(expr.Col(0, "g"), expr.CInt(1)), expr.CInt(2)), Name: "g"},
				{E: expr.Col(1, "s"), Name: "s"},
			},
		}
		cur = &ra.Agg{
			Child:   half,
			GroupBy: []int{0},
			Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "s"), Name: "s"}},
		}
	}
	return cur
}

// Fig11 reproduces Figure 11: runtime of chained aggregation over
// uncertain TPC-H data for Det, AU-DB, Trio, Symb and MCDB.
func Fig11(ctx context.Context, cfg Config) (*Table, error) {
	scale := cfg.sizef(0.1, 0.01)
	maxOps := 10
	if cfg.quickish() {
		maxOps = 6
	}
	if cfg.Tiny {
		maxOps = 3
	}
	d := buildPDBench(scale, 0.02, 1.0, cfg.Seed)
	sgw, err := d.audb.SGWContext(ctx)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Simple aggregation over TPC-H data: seconds by #aggregation operators",
		Headers: []string{"#agg-ops", "Det", "AUDB", "Trio", "Symb", "MCDB"},
		Notes:   []string{fmt.Sprintf("scale=%.3f, 2%% uncertainty", scale)},
	}
	for n := 1; n <= maxOps; n++ {
		// The Trio/Symb segments predate the context plumbing; check at
		// segment boundaries so Ctrl-C still lands between measurements.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		plan := chainedAggPlan(n)
		row := []string{fmt.Sprintf("%d", n)}
		dt, err := timeIt(func() error { _, e := bag.Exec(ctx, plan, sgw); return e })
		if err != nil {
			return nil, err
		}
		row = append(row, secs(dt))
		dt, err = timeIt(func() error {
			_, e := core.Exec(ctx, plan, d.audb, cfg.opts(core.Options{AggCompression: 64}))
			return e
		})
		if err != nil {
			return nil, err
		}
		row = append(row, secs(dt))
		// Trio: alternative expansion for level 1, interval folding above.
		dt, err = timeIt(func() error { return trioChain(d, n) })
		if err != nil {
			return nil, err
		}
		row = append(row, secs(dt))
		// Symb: symbolic terms kept across the chain.
		dt, err = timeIt(func() error {
			_, _, e := baselines.ExecSymbChain(d.xdb, "lineitem", 2, 1, n)
			return e
		})
		if err != nil {
			return nil, err
		}
		row = append(row, secs(dt))
		dt, err = timeIt(func() error { _, e := baselines.ExecMCDB(ctx, plan, d.xdb, 10, 7); return e })
		if err != nil {
			return nil, err
		}
		row = append(row, secs(dt))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// trioChain runs Trio-style chained aggregation: expansion-based bounds at
// level one, then per-level interval summing over halved keys.
func trioChain(d *pdbenchData, n int) error {
	res, err := baselines.ExecTrioAgg(&ra.Scan{Table: "lineitem"}, d.xdb, []int{1},
		ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(2, "l_quantity"), Name: "s"})
	if err != nil {
		return err
	}
	type iv struct{ lo, hi float64 }
	cur := map[int64]iv{}
	for _, g := range res.Groups {
		k := g.Key[0].AsInt()
		e := cur[k]
		e.lo += g.Lo[0].AsFloat()
		e.hi += g.Hi[0].AsFloat()
		cur[k] = e
	}
	for level := 1; level < n; level++ {
		next := map[int64]iv{}
		for k, e := range cur {
			nk := (k + 1) / 2
			ne := next[nk]
			ne.lo += e.lo
			ne.hi += e.hi
			next[nk] = ne
		}
		cur = next
	}
	return nil
}

// Fig12 reproduces the TPC-H query performance table (Figure 12):
// AU-DB / Det / MCDB runtimes for Q1, Q3, Q5, Q7 and Q10 across
// uncertainty and scale configurations.
func Fig12(ctx context.Context, cfg Config) (*Table, error) {
	base := cfg.sizef(0.1, 0.01)
	configs := []struct {
		label string
		scale float64
		unc   float64
	}{
		{"2%/0.1x", base / 10, 0.02},
		{"2%/1x", base, 0.02},
		{"5%/1x", base, 0.05},
		{"10%/1x", base, 0.10},
		{"30%/1x", base, 0.30},
	}
	if cfg.Tiny {
		configs = configs[:2]
	}
	queries := []string{"Q1", "Q3", "Q5", "Q7", "Q10"}
	t := &Table{
		ID:      "fig12",
		Title:   "TPC-H query performance (seconds)",
		Headers: append([]string{"query", "system"}, labelsOf(configs)...),
		Notes:   []string{fmt.Sprintf("1x corresponds to scale=%.3f on this engine", base)},
	}
	type cell struct{ audb, det, mcdb string }
	results := make(map[string][]cell)
	for _, c := range configs {
		d := buildPDBench(c.scale, c.unc, 0.25, cfg.Seed)
		sgw, err := d.audb.SGWContext(ctx)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			plan, err := tpch.Compile(q, d.cat)
			if err != nil {
				return nil, err
			}
			var cl cell
			dt, err := timeIt(func() error {
				_, e := core.Exec(ctx, plan, d.audb, cfg.opts(core.Options{JoinCompression: 64, AggCompression: 64}))
				return e
			})
			if err != nil {
				return nil, fmt.Errorf("%s audb: %w", q, err)
			}
			cl.audb = secs(dt)
			dt, err = timeIt(func() error { _, e := bag.Exec(ctx, plan, sgw); return e })
			if err != nil {
				return nil, err
			}
			cl.det = secs(dt)
			dt, err = timeIt(func() error { _, e := baselines.ExecMCDB(ctx, plan, d.xdb, 10, 7); return e })
			if err != nil {
				return nil, err
			}
			cl.mcdb = secs(dt)
			results[q] = append(results[q], cl)
		}
	}
	for _, q := range queries {
		au := []string{q, "AU-DB"}
		de := []string{"", "Det"}
		mc := []string{"", "MCDB"}
		for _, cl := range results[q] {
			au = append(au, cl.audb)
			de = append(de, cl.det)
			mc = append(mc, cl.mcdb)
		}
		t.Rows = append(t.Rows, au, de, mc)
	}
	return t, nil
}

func labelsOf(configs []struct {
	label string
	scale float64
	unc   float64
}) []string {
	out := make([]string, len(configs))
	for i, c := range configs {
		out[i] = c.label
	}
	return out
}

var _ = types.Null
