package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/phys"
	"github.com/audb/audb/internal/ra"
)

// Vec is not a paper figure: it measures the columnar batch layout and
// vectorized kernels of internal/phys against the legacy row-at-a-time
// batches (phys.Options.RowBatches) on the workload they target — a
// fully-certain sparse table driven through the streaming Select→Project
// chain (scan aliases stored columns, the predicate runs column-at-a-time,
// Project reuses column slices), and a selection-heavy filter where ~90%
// of every batch dies in the selection vector without a single tuple being
// materialized. One row per (plan, representation): wall time, total bytes
// allocated and allocation count per execution, plus a ratio row. Results
// are verified bit-identical between representations before anything is
// timed.
func Vec(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(400000, 60000)
	const cols, domain = 4, 1000
	rel := translateWide("t", rows, cols, domain, 0, nil, cfg.Seed)
	if rel.Compact(core.StoragePolicy{Mode: core.ReprForceSparse}) != core.ReprSparse {
		return nil, fmt.Errorf("vec: certain table did not compact to sparse")
	}
	if !rel.FastCertain() {
		return nil, fmt.Errorf("vec: certain table did not qualify for the fast path")
	}
	db := core.DB{"t": rel}

	chain := &ra.Project{
		Cols: []ra.ProjCol{
			{E: expr.Col(0, "a0"), Name: "a0"},
			{E: expr.Add(expr.Col(1, "a1"), expr.Col(2, "a2")), Name: "s"},
		},
		Child: &ra.Select{
			Child: &ra.Scan{Table: "t"},
			Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(700)),
		},
	}
	filter := &ra.Select{
		Child: &ra.Scan{Table: "t"},
		Pred:  expr.Lt(expr.Col(1, "a1"), expr.CInt(domain/10)),
	}
	limited := &ra.Limit{N: 100, Child: chain}
	plans := []struct {
		label string
		plan  ra.Node
	}{
		{"select-project", chain},
		{"chain-limit", limited},
		{"filter-90pct", filter},
	}

	t := &Table{
		ID:      "vec",
		Title:   "columnar batches vs row batches: latency and allocation",
		Headers: []string{"plan", "batches", "seconds", "alloc MB", "allocs"},
		Notes: []string{
			fmt.Sprintf("%d input rows x %d certain columns, sparse storage (FastCertain)", rows, cols),
			"select-project = scan>select(70%)>project(col perm + vectorized add); chain-limit tops it with limit(100); filter-90pct keeps ~10% of rows via the selection vector",
			"row batches densify every scanned batch into tuples and run the per-row kernels (the pre-columnar executor)",
			"every plan's result is verified bit-identical between representations before timing",
		},
	}

	opts := cfg.opts(core.Options{})
	reps := []struct {
		label string
		opt   phys.Options
	}{
		{"columnar", phys.Options{Exec: opts}},
		{"row", phys.Options{RowBatches: true, Exec: opts}},
	}
	for _, p := range plans {
		// Correctness first: both representations must produce the same
		// relation, tuple for tuple, before either is timed.
		cres, err := phys.Exec(ctx, p.plan, db, reps[0].opt)
		if err != nil {
			return nil, fmt.Errorf("vec %s (columnar): %w", p.label, err)
		}
		rres, err := phys.Exec(ctx, p.plan, db, reps[1].opt)
		if err != nil {
			return nil, fmt.Errorf("vec %s (row): %w", p.label, err)
		}
		if ch, rh := fingerprint(cres.Sort()), fingerprint(rres.Sort()); ch != rh {
			return nil, fmt.Errorf("vec %s: representations diverged (%x vs %x)", p.label, ch, rh)
		}

		var dts [2]time.Duration
		var mallocs [2]uint64
		for ri, r := range reps {
			run := func() error {
				_, err := phys.Exec(ctx, p.plan, db, r.opt)
				return err
			}
			// Warm up once (lazily grown batch buffers, compiled programs),
			// then measure a single execution with before/after heap stats.
			if err := run(); err != nil {
				return nil, fmt.Errorf("vec %s/%s: %w", p.label, r.label, err)
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			dt, err := timeIt(run)
			if err != nil {
				return nil, fmt.Errorf("vec %s/%s: %w", p.label, r.label, err)
			}
			runtime.ReadMemStats(&after)
			dts[ri] = dt
			mallocs[ri] = after.Mallocs - before.Mallocs
			t.Rows = append(t.Rows, []string{
				p.label, r.label, secs(dt),
				fmt.Sprintf("%.1f", float64(after.TotalAlloc-before.TotalAlloc)/(1<<20)),
				fmt.Sprintf("%d", mallocs[ri]),
			})
		}
		allocRatio := "n/a"
		if mallocs[0] > 0 {
			allocRatio = fmt.Sprintf("%.1fx", float64(mallocs[1])/float64(mallocs[0]))
		}
		t.Rows = append(t.Rows, []string{
			p.label, "row/columnar", ratio(dts[1], dts[0]) + "x", "", allocRatio,
		})
	}
	return t, nil
}
