package bench

import (
	"context"
	"fmt"
	"math/rand"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/baselines"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
	"github.com/audb/audb/internal/worlds"
)

// Fig15 reproduces Figures 15a/15b: over-grouping percentage and
// aggregation-range over-estimation of AU-DB aggregation against exact
// per-group bounds, varying the fraction of uncertain tuples and the
// relative size of attribute ranges.
func Fig15(ctx context.Context, cfg Config) (*Table, error) {
	rows := cfg.size(5000, 1000)
	t := &Table{
		ID:      "fig15",
		Title:   "aggregation accuracy: over-grouping (15a) and range over-estimation (15b)",
		Headers: []string{"uncertainty", "range/domain", "over-grouping %", "range factor"},
		Notes:   []string{fmt.Sprintf("%d rows, sum(v) group by g, 10 alternatives per uncertain tuple", rows)},
	}
	uncs := []float64{0.02, 0.03, 0.05}
	fracs := []float64{0.01, 0.02, 0.05, 0.10}
	if cfg.Tiny {
		uncs = []float64{0.02, 0.05}
		fracs = []float64{0.01, 0.10}
	}
	for _, unc := range uncs {
		for _, frac := range fracs {
			det := bag.DB{"t": synth.WideTable(rows, 2, 1000, cfg.Seed)}
			x := synth.Inject(det, synth.InjectConfig{
				CellProb: unc, MaxAlts: 8, RangeFrac: frac,
				EligibleCols: []int{0, 1}, Seed: cfg.Seed + int64(frac*1000),
			})
			au := translate.XDB(x["t"])
			over := metrics.OverGrouping(au, []int{0})
			plan := &ra.Agg{
				Child:   &ra.Scan{Table: "t"},
				GroupBy: []int{0},
				Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "v"), Name: "s"}},
			}
			res, err := core.Exec(ctx, plan, core.DB{"t": au}, cfg.opts(core.Options{}))
			if err != nil {
				return nil, err
			}
			exact := metrics.ExactGroupSumBounds(x["t"], 0, 1)
			factor := metrics.RangeOverEstimation(res, []int{0}, 1, exact)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", unc*100),
				fmt.Sprintf("%.0f%%", frac*100),
				fmt.Sprintf("%.1f", over),
				fmt.Sprintf("%.2f", factor),
			})
		}
	}
	return t, nil
}

// keyViolationX converts a key-violating relation into a block-independent
// x-relation (one block per key, alternatives = the conflicting tuples),
// the input representation for Trio and MCDB in the Figure 17 experiment.
func keyViolationX(rel *bag.Relation, keyCol int) *worlds.XRelation {
	groups := map[string][]int{}
	var order []string
	for i, t := range rel.Tuples {
		k := t.KeyOn([]int{keyCol})
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := worlds.NewXRelation(rel.Schema)
	for _, k := range order {
		idxs := groups[k]
		blk := worlds.XTuple{}
		for _, i := range idxs {
			blk.Alts = append(blk.Alts, rel.Tuples[i])
		}
		out.AddBlock(blk)
	}
	return out
}

// Fig17 reproduces the real-world-data table (Figure 17) on synthetic
// datasets matching the published uncertainty profiles (DESIGN.md
// substitution 5): runtime plus accuracy against (approximate) ground
// truth for AU-DB, Trio, MCDB and UA-DB.
func Fig17(ctx context.Context, cfg Config) (*Table, error) {
	profiles := []synth.KeyViolationProfile{
		synth.NetflixProfile, synth.CrimesProfile, synth.HealthcareProfile,
	}
	t := &Table{
		ID:    "fig17",
		Title: "key-repaired datasets: runtime and accuracy",
		Headers: []string{"dataset", "query", "system", "time(s)",
			"cert.recall", "bounds(min..max)", "poss.by-key", "poss.by-val"},
		Notes: []string{
			"datasets synthesized to the uncertainty profiles of Figure 17 (see DESIGN.md)",
			"ground truth: exact possible answers (monotone expansion); certain answers from 25 sampled repairs",
		},
	}
	for _, p := range profiles {
		if cfg.quickish() {
			p.Rows /= 10
		}
		if cfg.Tiny {
			p.Rows /= 4
		}
		rel := synth.KeyViolationTable(p)
		x := keyViolationX(rel, 0)
		au := translate.KeyRepair(rel, []int{0})
		xdb := worlds.XDB{"t": x}
		audb := core.DB{"t": au}
		ua := baselines.UADBFromX(xdb)

		if err := fig17SPJ(ctx, t, p.Name, rel, xdb, audb, ua, cfg); err != nil {
			return nil, err
		}
		if err := fig17GB(ctx, t, p.Name, x, xdb, audb, cfg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// fig17SPJ runs the selection query of the experiment on every system.
func fig17SPJ(ctx context.Context, t *Table, name string, rel *bag.Relation, xdb worlds.XDB, audb core.DB, ua *baselines.UADB, cfg Config) error {
	threshold := expr.CInt(200)
	plan := &ra.Select{
		Child: &ra.Scan{Table: "t"},
		Pred:  expr.Lt(expr.Col(3, "v0"), threshold),
	}
	// Ground truth: possible answers over the expanded relation
	// (monotone query); certain answers from sampled repairs.
	possible, err := bag.Exec(ctx, plan, bag.DB{"t": rel})
	if err != nil {
		return err
	}
	certain, err := sampledCertain(ctx, plan, xdb, 25, cfg.Seed)
	if err != nil {
		return err
	}

	var auRes *core.Relation
	dt, err := timeIt(func() error {
		r, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{}))
		auRes = r
		return e
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "SPJ", "AU-DB", secs(dt),
		fmt.Sprintf("%.0f%%", 100*metrics.CertainRecall(auRes, certain)),
		"1.0",
		fmt.Sprintf("%.0f%%", 100*metrics.PossibleRecallByKey(auRes, possible, []int{0})),
		fmt.Sprintf("%.0f%%", 100*metrics.PossibleRecall(auRes, possible)),
	})

	dt, err = timeIt(func() error { _, _, e := baselines.ExecTrioSPJ(plan, xdb); return e })
	if err != nil {
		return err
	}
	tCert, tPoss, err := baselines.ExecTrioSPJ(plan, xdb)
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "SPJ", "Trio", secs(dt),
		recallOfBag(tCert, certain), "1.0",
		recallByKeyOfBag(tPoss, possible), recallOfBag(tPoss, possible),
	})

	var mres *baselines.MCDBResult
	dt, err = timeIt(func() error {
		r, e := baselines.ExecMCDB(ctx, plan, xdb, 10, cfg.Seed)
		mres = r
		return e
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "SPJ", "MCDB", secs(dt),
		"n/a", "1.0",
		recallByKeyOfBag(mres.PossibleTuples(), possible), recallOfBag(mres.PossibleTuples(), possible),
	})

	var uaRes *baselines.UADBResult
	dt, err = timeIt(func() error {
		r, e := baselines.ExecUADB(ctx, plan, ua)
		uaRes = r
		return e
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "SPJ", "UA-DB", secs(dt),
		recallOfBag(uaRes.Lower, certain), "n/a",
		recallByKeyOfBag(uaRes.SG, possible), recallOfBag(uaRes.SG, possible),
	})
	return nil
}

// fig17GB runs the grouped aggregation query.
func fig17GB(ctx context.Context, t *Table, name string, x *worlds.XRelation, xdb worlds.XDB, audb core.DB, cfg Config) error {
	plan := &ra.Agg{
		Child:   &ra.Scan{Table: "t"},
		GroupBy: []int{1}, // s0 (categorical)
		Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(3, "v0"), Name: "s"}},
	}
	exact := metrics.ExactGroupSumBounds(x, 1, 3)

	var auRes *core.Relation
	dt, err := timeIt(func() error {
		r, e := core.Exec(ctx, plan, audb, cfg.opts(core.Options{}))
		auRes = r
		return e
	})
	if err != nil {
		return err
	}
	st := metrics.TightnessOf(auRes, []int{0}, 1, exact)
	t.Rows = append(t.Rows, []string{name, "GB", "AU-DB", secs(dt),
		"100%", fmt.Sprintf("%.1f..%.1f", st.Min, st.Max), "100%", "100%",
	})

	dt, err = timeIt(func() error {
		_, e := baselines.ExecTrioAgg(&ra.Scan{Table: "t"}, xdb, []int{1},
			ra.AggSpec{Fn: ra.AggSum, Arg: expr.Col(3, "v0"), Name: "s"})
		return e
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "GB", "Trio", secs(dt), "100%", "1.0", "100%", "100%"})

	dt, err = timeIt(func() error { _, e := baselines.ExecMCDB(ctx, plan, xdb, 10, cfg.Seed); return e })
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, []string{name, "GB", "MCDB", secs(dt), "n/a", "<1 (sampled)", "100%", "~0%"})
	return nil
}

// sampledCertain approximates the certain answers by intersecting the
// query results of sampled worlds.
func sampledCertain(ctx context.Context, plan ra.Node, xdb worlds.XDB, samples int, seed int64) (*bag.Relation, error) {
	rng := rand.New(rand.NewSource(seed))
	var acc *bag.Relation
	for i := 0; i < samples; i++ {
		res, err := bag.Exec(ctx, plan, xdb.Sample(rng))
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = res.Clone().Merge()
			continue
		}
		next := bag.New(acc.Schema)
		m := res.Clone().Merge()
		for j, tup := range acc.Tuples {
			if c := m.Count(tup); c > 0 {
				if c < acc.Counts[j] {
					next.Add(tup, c)
				} else {
					next.Add(tup, acc.Counts[j])
				}
			}
		}
		acc = next
	}
	return acc, nil
}

// recallOfBag: fraction of ground tuples present in got.
func recallOfBag(got, ground *bag.Relation) string {
	if ground.Len() == 0 {
		return "100%"
	}
	hit := 0
	for _, tup := range ground.Tuples {
		if got.Count(tup) > 0 {
			hit++
		}
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hit)/float64(ground.Len()))
}

// recallByKeyOfBag groups ground tuples by their first column.
func recallByKeyOfBag(got, ground *bag.Relation) string {
	if ground.Len() == 0 {
		return "100%"
	}
	covered := map[string]bool{}
	for _, tup := range ground.Tuples {
		k := tup.KeyOn([]int{0})
		if covered[k] {
			continue
		}
		if got.Count(tup) > 0 {
			covered[k] = true
		} else if _, seen := covered[k]; !seen {
			covered[k] = false
		}
	}
	hit := 0
	for _, ok := range covered {
		if ok {
			hit++
		}
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hit)/float64(len(covered)))
}
