package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRegistryComplete ensures every paper artifact has an experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{"fig10a", "fig10b", "fig11", "fig12", "fig13a", "fig13b",
		"fig13c", "fig13d", "fig14", "fig15", "fig16", "fig17", "par", "prep", "opt", "pipe", "cbo", "net", "sparse", "vec"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Errorf("registry[%d] = %s want %s", i, reg[i].ID, id)
		}
		if reg[i].Paper == "" {
			t.Errorf("%s missing paper reference", id)
		}
	}
	if _, ok := Find("fig14"); !ok {
		t.Error("Find fig14")
	}
	if _, ok := Find("zzz"); ok {
		t.Error("Find should miss zzz")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n1"},
	}
	out := tbl.Render()
	for _, want := range []string{"demo", "bbbb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.5" {
		t.Error("ms")
	}
	if secs(1500*time.Millisecond) != "1.500" {
		t.Error("secs")
	}
	if ratio(2*time.Second, time.Second) != "2.00" {
		t.Error("ratio")
	}
	if ratio(time.Second, 0) != "n/a" {
		t.Error("ratio zero base")
	}
	keys := sortedKeys(map[string]int{"b": 1, "a": 2})
	if keys[0] != "a" || keys[1] != "b" {
		t.Error("sortedKeys")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment at tiny sizes: each
// must succeed and produce a plausible table. This doubles as the
// integration test of the whole pipeline (generators -> translations ->
// engines -> baselines -> metrics). Set AUDB_BENCH_FULL=1 to run the
// quick (audbench-default) sizes instead of the tiny smoke sizes.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Tiny: true, Seed: 1}
	if os.Getenv("AUDB_BENCH_FULL") != "" {
		cfg.Tiny = false
	}
	if testing.Short() && !cfg.Tiny {
		t.Skip("full-size experiments are slow; skipped in -short mode")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			if len(tbl.Headers) == 0 || tbl.ID != e.ID {
				t.Fatalf("%s malformed table", e.ID)
			}
			for _, r := range tbl.Rows {
				if len(r) != len(tbl.Headers) {
					t.Fatalf("%s row width %d != header width %d: %v",
						e.ID, len(r), len(tbl.Headers), r)
				}
			}
			t.Logf("\n%s", tbl.Render())
		})
	}
}

// TestWriteJSON: the -json sidecar round-trips the table, re-keys the
// data by header, and lands at BENCH_<exp>.json.
func TestWriteJSON(t *testing.T) {
	tbl := &Table{
		ID:      "figX",
		Title:   "synthetic",
		Headers: []string{"n", "ms"},
		Rows:    [][]string{{"1", "0.5"}, {"2", "1.5"}, {"4", "3.0"}},
		Notes:   []string{"synthetic table"},
	}
	r := JSONResult(tbl, "none", "tiny", 7, 2, 1500*time.Microsecond)
	dir := t.TempDir()
	path, err := WriteJSON(dir, r)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_figX.json" {
		t.Fatalf("path = %q", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "figX" || got.Mode != "tiny" || got.Seed != 7 || got.Workers != 2 {
		t.Fatalf("metadata = %+v", got)
	}
	if got.TookMS != 1.5 {
		t.Fatalf("TookMS = %v", got.TookMS)
	}
	if len(got.Rows) != 3 || got.Rows[2][1] != "3.0" {
		t.Fatalf("rows = %+v", got.Rows)
	}
	wantSeries := map[string][]string{"n": {"1", "2", "4"}, "ms": {"0.5", "1.5", "3.0"}}
	if !reflect.DeepEqual(got.Series, wantSeries) {
		t.Fatalf("series = %+v, want %+v", got.Series, wantSeries)
	}
}
