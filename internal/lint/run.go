package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// Finding is one diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// suppressPrefix is the magic comment that silences one analyzer for the
// line it appears on (or, when alone on a line, for the following line):
//
//	//lint:allow audblint-<name> reason
//
// The reason is mandatory: a suppression without a stated reason does
// not suppress.
const suppressPrefix = "//lint:allow audblint-"

// suppressions maps file -> line -> analyzer names allowed there.
type suppressions map[string]map[int][]string

// collectSuppressions scans a unit's comments for //lint:allow markers.
// A marker suppresses findings on its own line and on the next line, so
// it can ride at the end of the offending line or on its own line above.
func collectSuppressions(u *Unit) suppressions {
	sup := suppressions{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, suppressPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, suppressPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: not a valid suppression
				}
				pos := u.Fset.Position(c.Pos())
				m := sup[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					sup[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], fields[0])
				m[pos.Line+1] = append(m[pos.Line+1], fields[0])
			}
		}
	}
	return sup
}

func (s suppressions) allows(name string, pos token.Position) bool {
	for _, a := range s[pos.Filename][pos.Line] {
		if a == name {
			return true
		}
	}
	return false
}

// RunUnit applies the analyzers to one unit and returns the surviving
// findings sorted by position.
func RunUnit(u *Unit, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sup := collectSuppressions(u)
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			pos := u.Fset.Position(d.Pos)
			if sup.allows(name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, u.Path, err)
		}
	}
	sortFindings(out)
	return out, nil
}

// Run loads the packages matching patterns and applies the analyzers.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	units, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, u := range units {
		fs, err := RunUnit(u, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
