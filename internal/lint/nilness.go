package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/audb/audb/internal/lint/analysis"
)

// Nilness is a lightweight, syntax-directed stand-in for the stock
// x/tools "nilness" SSA analysis (unavailable offline): inside the body
// of `if x == nil { ... }`, where x is a pointer- or interface-typed
// variable that the body has not reassigned, dereferencing x — a field
// or method selection, *x, or a call x() — is a guaranteed panic. The
// full dataflow version can replace this once the upstream dependency
// is vendorable; the common bug shape (an error path that formats the
// very value it just proved nil) is caught here.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: "report dereferences of a variable inside the if-body that just " +
		"proved it nil (a syntactic subset of x/tools' nilness)",
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id := nilComparedIdent(pass, ifs.Cond)
			if id == nil {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			reportNilDerefs(pass, ifs.Body, obj, id.Name)
			return true
		})
	}
	return nil, nil
}

// nilComparedIdent matches `x == nil` / `nil == x` where x is a
// pointer- or interface-typed identifier.
func nilComparedIdent(pass *analysis.Pass, cond ast.Expr) *ast.Ident {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return nil
	}
	x, y := bin.X, bin.Y
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	switch pass.TypesInfo.TypeOf(id).Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature:
		return id
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// reportNilDerefs flags dereferences of obj within body, stopping at the
// first reassignment (after which nilness is unknown).
func reportNilDerefs(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, name string) {
	reassigned := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				if !reassigned.IsValid() || as.Pos() < reassigned {
					reassigned = as.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl != nil {
			return false // a closure may run after reassignment elsewhere
		}
		var at token.Pos
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			// A method value/call on a nil *T receiver can be legal Go
			// (methods may accept nil receivers); a field access cannot.
			if s, ok := pass.TypesInfo.Selections[n]; ok && s.Kind() != types.FieldVal {
				return true
			}
			at = n.Pos()
		case *ast.StarExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			at = n.Pos()
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			at = n.Pos()
		default:
			return true
		}
		if reassigned.IsValid() && at > reassigned {
			return true
		}
		pass.Reportf(at, "%s is nil on this path (proved by the enclosing if); dereferencing it panics", name)
		return true
	})
}
