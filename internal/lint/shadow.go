package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/audb/audb/internal/lint/analysis"
)

// Shadow is a native reimplementation of the stock x/tools "shadow"
// check (the upstream module is unavailable offline). It reports a `:=`
// or var declaration that shadows a same-named, same-typed variable of
// an enclosing scope in the same function, when the outer variable is
// still used after the shadowing scope ends — the combination where a
// `:=` typo silently splits one variable into two. Matching upstream's
// noise reduction: function parameters, package-level variables,
// differently-typed shadows, and the statement-scoped `if x := f(); …`
// idiom are not reported.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: "report := / var declarations that shadow a same-typed variable " +
		"from an enclosing scope which is used again after the inner " +
		"scope ends",
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) (any, error) {
	// Index every use of every object, so "outer variable used after the
	// shadowing scope" is one lookup.
	uses := map[types.Object][]token.Pos{}
	for id, obj := range pass.TypesInfo.Uses {
		uses[obj] = append(uses[obj], id.Pos())
	}
	usedAfter := func(obj types.Object, end token.Pos) bool {
		for _, p := range uses[obj] {
			if p > end {
				return true
			}
		}
		return false
	}
	// Scope -> declaring node, to exempt statement-scoped declarations
	// (`if err := f(); …`), the idiomatic and deliberate shadow.
	scopeNode := map[*types.Scope]ast.Node{}
	for n, s := range pass.TypesInfo.Scopes {
		scopeNode[s] = n
	}
	pkgScope := pass.Pkg.Scope()
	checkIdent := func(id *ast.Ident) {
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok || v.Name() == "_" {
			return
		}
		inner := v.Parent()
		if inner == nil || inner == pkgScope {
			return
		}
		switch scopeNode[inner].(type) {
		case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			return // statement-scoped shadow: the `if x := f(); …` idiom
		}
		outerScope := inner.Parent()
		if outerScope == nil {
			return
		}
		_, outer := outerScope.LookupParent(v.Name(), v.Pos())
		ov, ok := outer.(*types.Var)
		if !ok || ov == v || ov.IsField() {
			return
		}
		// Only intra-function shadowing: the outer variable must itself
		// live below package scope, and be older than the shadow.
		if ov.Parent() == nil || ov.Parent() == pkgScope || ov.Parent() == types.Universe {
			return
		}
		if ov.Pos() >= v.Pos() || !types.Identical(v.Type(), ov.Type()) {
			return
		}
		if !usedAfter(ov, inner.End()) {
			return
		}
		pos := pass.Fset.Position(ov.Pos())
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d; the outer variable is used after this scope", v.Name(), pos.Line)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			// Like upstream: only declarations introduce reportable
			// shadows — parameters and range variables are deliberate.
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						checkIdent(id)
					}
				}
			case *ast.GenDecl:
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							checkIdent(id)
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}
