// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis API surface that audblint's analyzers
// use. The real module is unavailable in the offline build environment,
// so rather than vendoring it wholesale, this package mirrors the
// Analyzer/Pass/Diagnostic contract exactly: analyzer code written
// against it reads like stock go/analysis code and can be moved onto the
// upstream framework by changing one import path once the dependency can
// be added.
//
// Only the pieces the suite needs exist: single-pass analyzers over a
// type-checked package (no Facts, no Requires graph, no SuggestedFixes).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one analysis: its name, documentation, and
// entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics ("[name]" suffix) and
	// in suppression comments (//lint:allow audblint-<name> reason).
	Name string

	// Doc is the one-paragraph documentation shown by audblint -help,
	// stating the invariant the analyzer guards.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf; the result value is unused (kept for API
	// compatibility with x/tools).
	Run func(*Pass) (any, error)
}

// Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
