package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// obsPath is the package providing the tracing spans.
const obsPath = "github.com/audb/audb/internal/obs"

// Obsspan guards the span lifecycle: a *obs.Span returned by a Start*
// call (obs.StartSpan, (*Span).StartChild) that is discarded, bound to
// the blank identifier, or bound to a variable that is never ended or
// handed off can never see End, so its duration is never stamped and it
// silently vanishes from every trace. The rule accepts any path that
// can end the span: a v.End() call (including deferred), returning the
// span, passing it as an argument (obs.Recorder.Record, Attach, a
// helper), or storing it somewhere that outlives the function. The obs
// package itself and _test.go files are exempt. Pre-timed spans built
// as struct literals for Attach are out of scope by construction — the
// rule fires on Start* calls only.
var Obsspan = &analysis.Analyzer{
	Name: "obsspan",
	Doc: "require every span started with obs.StartSpan or Span.StartChild " +
		"to be ended or handed off (End called, returned, passed as an " +
		"argument, or stored), so traces never contain spans whose " +
		"duration was silently dropped",
	Run: runObsspan,
}

func runObsspan(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == obsPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkObsspanFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

// checkObsspanFunc walks one function body (closures included — a span
// started in a closure and ended by the enclosing function, or vice
// versa, still has its End inside the same top-level body).
func checkObsspanFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// The span is the whole statement: nothing binds it.
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanStart(pass, call) {
				pass.Reportf(call.Pos(), "result of %s is discarded; the span can never be ended — bind it and call End (or defer it)", startCallName(pass, call))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isSpanStart(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue // stored into a field or index: escapes
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is assigned to the blank identifier; the span can never be ended", startCallName(pass, call))
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !spanHandledIn(pass, body, obj, n) {
					pass.Reportf(call.Pos(), "span %s from %s is never ended or handed off; call %s.End, or return/record it", obj.Name(), startCallName(pass, call), obj.Name())
				}
			}
		}
		return true
	})
}

// isSpanStart reports whether call invokes a function whose name starts
// with "Start" and whose result is *obs.Span.
func isSpanStart(pass *analysis.Pass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || !strings.HasPrefix(fn.Name(), "Start") {
		return false
	}
	res := fn.Type().(*types.Signature).Results()
	return res.Len() == 1 && isObsSpanPtr(res.At(0).Type())
}

func isObsSpanPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == obsPath
}

// startCallName renders the call for diagnostics: the callee name plus
// the span name when the first argument is a string literal.
func startCallName(pass *analysis.Pass, call *ast.CallExpr) string {
	name := "Start"
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return name + "(" + strconv.Quote(s) + ")"
			}
		}
	}
	return name
}

// spanHandledIn reports whether, anywhere in body outside the binding
// assignment itself, the span object reaches an End call or escapes the
// binding: returned, passed as an argument, assigned onward, or placed
// in a composite literal. Any escape hands responsibility for End to
// the receiver (Recorder.Record and Span.Attach both take ownership),
// which is as far as a single-function analysis can see.
func spanHandledIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, binding *ast.AssignStmt) bool {
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n == binding {
				return false // the binding itself is not a use
			}
			for _, rhs := range n.Rhs {
				if exprMentions(pass, rhs, obj) {
					handled = true // stored onward (field, var, map)
					return false
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && objOf(pass, id) == obj {
					handled = true
					return false
				}
			}
			for _, arg := range n.Args {
				if exprMentions(pass, arg, obj) {
					handled = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if exprMentions(pass, r, obj) {
					handled = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if exprMentions(pass, e, obj) {
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}

// exprMentions reports whether expr contains a bare reference to obj
// (not through a selector: sp.SetInt(...) keeps sp as sel.X, which is a
// bare *ast.Ident and does count — attribute calls alone do not end a
// span, so only the identifier position matters, and we exclude it by
// checking the parent in spanHandledIn's CallExpr case instead).
func exprMentions(pass *analysis.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// A method call or field access on the span is not a
			// hand-off; descend into sel.X only for nested expressions.
			if id, ok := sel.X.(*ast.Ident); ok && objOf(pass, id) == obj {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && objOf(pass, id) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}
