package lint

import (
	"go/ast"
	"go/types"

	"github.com/audb/audb/internal/lint/analysis"
)

// rangevalPath is the one package allowed to assemble range triples.
const rangevalPath = "github.com/audb/audb/internal/rangeval"

// Boundsctor guards the paper's Definition 6 invariant lb ≤ sg ≤ ub by
// construction: outside internal/rangeval, a rangeval.V may not be built
// from a non-empty composite literal, and its Lo/SG/Hi fields may not be
// written. Every triple must flow through the constructors the package
// exports (Certain, New, Checked, Full) or the combinators that preserve
// the invariant (Union), so the property has a single auditable
// chokepoint. The zero literal rangeval.V{} stays legal: it is the
// conventional "no value" alongside a non-nil error.
var Boundsctor = &analysis.Analyzer{
	Name: "boundsctor",
	Doc: "forbid constructing rangeval.V outside internal/rangeval: " +
		"non-empty composite literals and writes to Lo/SG/Hi bypass the " +
		"lb ≤ sg ≤ ub chokepoint (use Certain/New/Checked/Full/Union)",
	Run: runBoundsctor,
}

func runBoundsctor(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == rangevalPath {
		return nil, nil // the defining package may do as it pleases
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if len(n.Elts) > 0 && isRangevalV(pass.TypesInfo.TypeOf(n)) {
					pass.Reportf(n.Pos(), "rangeval.V composite literal bypasses the lb ≤ sg ≤ ub chokepoint; use rangeval.New, Checked, Certain or Full")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && isVFieldSelection(pass, sel) {
						pass.Reportf(sel.Pos(), "write to rangeval.V.%s bypasses the lb ≤ sg ≤ ub chokepoint; build a new value with rangeval.New or Checked", sel.Sel.Name)
					}
				}
			case *ast.UnaryExpr:
				// &v.Lo hands out a writable alias to one bound.
				if n.Op.String() == "&" {
					if sel, ok := n.X.(*ast.SelectorExpr); ok && isVFieldSelection(pass, sel) {
						pass.Reportf(n.Pos(), "taking the address of rangeval.V.%s allows writes that bypass the lb ≤ sg ≤ ub chokepoint", sel.Sel.Name)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isRangevalV reports whether t is rangeval.V (possibly behind a pointer).
func isRangevalV(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "V" && obj.Pkg() != nil && obj.Pkg().Path() == rangevalPath
}

// isVFieldSelection reports whether sel selects one of rangeval.V's
// bound fields (Lo, SG, Hi) as a field (not a method).
func isVFieldSelection(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lo", "SG", "Hi":
	default:
		return false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == rangevalPath && isRangevalV(s.Recv())
}
