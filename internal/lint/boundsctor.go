package lint

import (
	"go/ast"
	"go/types"

	"github.com/audb/audb/internal/lint/analysis"
)

// rangevalPath is the one package allowed to assemble range triples.
const rangevalPath = "github.com/audb/audb/internal/rangeval"

// Boundsctor guards the paper's Definition 6 invariant lb ≤ sg ≤ ub by
// construction: outside internal/rangeval, a rangeval.V may not be built
// from a non-empty composite literal, and its Lo/SG/Hi fields may not be
// written. Every triple must flow through the constructors the package
// exports (Certain, New, Checked, Full) or the combinators that preserve
// the invariant (Union), so the property has a single auditable
// chokepoint. The zero literal rangeval.V{} stays legal: it is the
// conventional "no value" alongside a non-nil error.
//
// The sparse column form rangeval.Col is held to the same standard: its
// Flat/Dense/Nulls fields are read-only outside rangeval (a raw slice
// poke like c.Flat[i] = v could desynchronize the null count, or plant an
// invariant-violating triple in Dense). Columns are assembled through
// ColBuilder and read through At/Len/IsFlat.
var Boundsctor = &analysis.Analyzer{
	Name: "boundsctor",
	Doc: "forbid constructing rangeval.V outside internal/rangeval: " +
		"non-empty composite literals and writes to Lo/SG/Hi bypass the " +
		"lb ≤ sg ≤ ub chokepoint (use Certain/New/Checked/Full/Union); " +
		"likewise rangeval.Col's Flat/Dense/Nulls are read-only (use ColBuilder)",
	Run: runBoundsctor,
}

func runBoundsctor(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() == rangevalPath {
		return nil, nil // the defining package may do as it pleases
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if len(n.Elts) == 0 {
					break // zero values: the "no value" convention
				}
				switch {
				case isRangevalV(pass.TypesInfo.TypeOf(n)):
					pass.Reportf(n.Pos(), "rangeval.V composite literal bypasses the lb ≤ sg ≤ ub chokepoint; use rangeval.New, Checked, Certain or Full")
				case isRangevalCol(pass.TypesInfo.TypeOf(n)):
					pass.Reportf(n.Pos(), "rangeval.Col composite literal bypasses the column invariants (flat xor dense, synced null count); assemble it with rangeval.ColBuilder")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportGuardedWrite(pass, lhs, "write to")
				}
			case *ast.IncDecStmt:
				// c.Nulls++ desynchronizes the null count.
				reportGuardedWrite(pass, n.X, "write to")
			case *ast.UnaryExpr:
				// &v.Lo (or &c.Flat) hands out a writable alias.
				if n.Op.String() == "&" {
					reportGuardedWrite(pass, n.X, "taking the address of")
				}
			}
			return true
		})
	}
	return nil, nil
}

// reportGuardedWrite flags expr when it denotes a guarded field —
// rangeval.V's Lo/SG/Hi or rangeval.Col's Flat/Dense/Nulls — either
// directly or as a raw slice poke through a Col field (c.Flat[i] = v).
func reportGuardedWrite(pass *analysis.Pass, expr ast.Expr, verb string) {
	if idx, ok := expr.(*ast.IndexExpr); ok {
		if sel, ok := idx.X.(*ast.SelectorExpr); ok && isColFieldSelection(pass, sel) {
			pass.Reportf(expr.Pos(), "%s rangeval.Col.%s[i] pokes the raw column storage; columns are immutable once built — assemble a new one with rangeval.ColBuilder", verb, sel.Sel.Name)
		}
		return
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch {
	case isVFieldSelection(pass, sel):
		pass.Reportf(expr.Pos(), "%s rangeval.V.%s bypasses the lb ≤ sg ≤ ub chokepoint; build a new value with rangeval.New or Checked", verb, sel.Sel.Name)
	case isColFieldSelection(pass, sel):
		pass.Reportf(expr.Pos(), "%s rangeval.Col.%s bypasses the column invariants; assemble a new column with rangeval.ColBuilder", verb, sel.Sel.Name)
	}
}

// isRangevalNamed reports whether t is the given rangeval type (possibly
// behind a pointer).
func isRangevalNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == rangevalPath
}

func isRangevalV(t types.Type) bool   { return isRangevalNamed(t, "V") }
func isRangevalCol(t types.Type) bool { return isRangevalNamed(t, "Col") }

// isGuardedFieldSelection reports whether sel selects the named field of
// the given rangeval type as a field (not a method).
func isGuardedFieldSelection(pass *analysis.Pass, sel *ast.SelectorExpr, typ func(types.Type) bool) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == rangevalPath && typ(s.Recv())
}

// isVFieldSelection reports whether sel selects one of rangeval.V's
// bound fields (Lo, SG, Hi).
func isVFieldSelection(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lo", "SG", "Hi":
	default:
		return false
	}
	return isGuardedFieldSelection(pass, sel, isRangevalV)
}

// isColFieldSelection reports whether sel selects one of rangeval.Col's
// storage fields (Flat, Dense, Nulls).
func isColFieldSelection(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Flat", "Dense", "Nulls":
	default:
		return false
	}
	return isGuardedFieldSelection(pass, sel, isRangevalCol)
}
