package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// corePath is the package that owns the Catalog.
const corePath = "github.com/audb/audb/internal/core"

// Catalogsnap guards the catalog's concurrency discipline (PR 2): query
// execution only ever sees an immutable Snapshot, and the live registry
// state behind core.Catalog is touched exclusively under its mutex.
// Outside internal/core, any direct field access on a Catalog is flagged
// (today the fields are unexported, so this also future-proofs against
// exporting one); inside internal/core, a function that reads or writes
// a Catalog field other than the mutex itself must have acquired
// c.mu.Lock or c.mu.RLock earlier in the same function body (a textual
// dominance approximation; helpers that intentionally run under a
// caller's lock carry a //lint:allow audblint-catalogsnap suppression
// with the reason).
var Catalogsnap = &analysis.Analyzer{
	Name: "catalogsnap",
	Doc: "restrict core.Catalog state to mutex-guarded access inside " +
		"internal/core and to the Snapshot/Lookup/Tables API elsewhere",
	Run: runCatalogsnap,
}

func runCatalogsnap(pass *analysis.Pass) (any, error) {
	inside := pass.Pkg.Path() == corePath
	for _, f := range pass.Files {
		// Tests may peek at registry state for assertions; the invariant
		// guards the production access paths.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCatalogAccess(pass, fd, inside)
		}
	}
	return nil, nil
}

func checkCatalogAccess(pass *analysis.Pass, fd *ast.FuncDecl, inside bool) {
	// First pass: where (if anywhere) does this function take the
	// catalog's lock?
	lockPos := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		if mu, ok := sel.X.(*ast.SelectorExpr); ok && isCatalogField(pass, mu) {
			if !lockPos.IsValid() || call.Pos() < lockPos {
				lockPos = call.Pos()
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isCatalogField(pass, sel) {
			return true
		}
		name := sel.Sel.Name
		if !inside {
			pass.Reportf(sel.Pos(), "direct access to core.Catalog field %s from outside internal/core; use the Snapshot/Lookup/Tables API", name)
			return true
		}
		if name == "mu" {
			return true // lock operations themselves
		}
		if !lockPos.IsValid() || sel.Pos() < lockPos {
			pass.Reportf(sel.Pos(), "core.Catalog.%s accessed without holding c.mu; take c.mu.Lock/RLock first or go through Snapshot", name)
		}
		return true
	})
}

// isCatalogField reports whether sel selects a struct field of
// core.Catalog.
func isCatalogField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := s.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Catalog" && obj.Pkg() != nil && obj.Pkg().Path() == corePath
}
