package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// physPath is the pipelined physical execution layer.
const physPath = "github.com/audb/audb/internal/phys"

// nocloneExemptFiles are the pipeline-breaker implementation files, the
// only places in internal/phys where materializing (and hence deep
// copying) is part of the contract.
var nocloneExemptFiles = map[string]bool{"breaker.go": true}

// Nocloneiter guards PR 4's zero-clone streaming property: in
// internal/phys, the streaming (non-breaker) operator paths must not
// deep-copy tuples or relations. Scans emit views into base storage and
// streaming operators rewrite only the annotation triple, so a Clone
// call on an engine type in a streaming file is either an accidental
// perf regression or a sign the operator should be a breaker. Calls to
// methods named Clone on module-local types are flagged outside
// breaker.go; ShallowClone (an O(1) header copy) stays legal, as do
// clones in _test.go files (world enumeration needs them).
var Nocloneiter = &analysis.Analyzer{
	Name: "nocloneiter",
	Doc: "forbid deep Clone() calls in internal/phys streaming " +
		"(non-breaker) paths, protecting the zero-clone pipeline property",
	Run: runNocloneiter,
}

func runNocloneiter(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != physPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, "_test.go") || nocloneExemptFiles[name] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Clone" {
				return true
			}
			if isModuleMethod(pass, sel.Sel) {
				pass.Reportf(call.Pos(), "deep Clone() in a streaming phys path breaks the zero-clone pipeline property; stream views (ShallowClone at most) or materialize in a breaker (breaker.go)")
			}
			return true
		})
	}
	return nil, nil
}

// isModuleMethod reports whether the called method is declared on a type
// of this module (stdlib Clone helpers are not our invariant's problem).
func isModuleMethod(pass *analysis.Pass, sel *ast.Ident) bool {
	fn, ok := pass.TypesInfo.Uses[sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return strings.HasPrefix(fn.Pkg().Path(), "github.com/audb/audb/")
}
