// The ctxpoll analyzer is scoped to the executor packages; the same
// unpolled loop outside them is none of its business.
package quiet

import "context"

type Tuple struct{ A int }

func unpolled(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += t.A
	}
	return n
}
