// Fixture for the catalogsnap analyzer, posing as internal/core: the
// Catalog's registry state may only be touched under its mutex.
package core

import "sync"

// Catalog mirrors the real catalog's shape (identified by type name and
// package path). Rels is exported here so the outside-package fixture
// can demonstrate the cross-package rule.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]int
	obs  int

	Rels map[string]int
}

func (c *Catalog) lockedWrite(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[name] = 1
	c.obs++
}

func (c *Catalog) lockedRead(name string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels[name]
}

func (c *Catalog) unlockedWrite(name string) {
	c.rels[name] = 1 // want `accessed without holding c.mu`
}

func (c *Catalog) unlockedRead() int {
	return c.obs // want `accessed without holding c.mu`
}

func (c *Catalog) lateLock(name string) int {
	n := c.rels[name] // want `accessed without holding c.mu`
	c.mu.RLock()
	defer c.mu.RUnlock()
	return n + c.rels[name]
}

// Snapshot is the sanctioned read API.
func (c *Catalog) Snapshot() map[string]int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]int, len(c.rels))
	for k, v := range c.rels {
		out[k] = v
	}
	return out
}

// runsUnderCallersLock is documented to run with the lock already held.
func (c *Catalog) runsUnderCallersLock() int {
	//lint:allow audblint-catalogsnap caller holds c.mu (see lockedCaller)
	return c.obs
}

func (c *Catalog) lockedCaller() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.runsUnderCallersLock()
}
