// Fixture for the ctxpoll analyzer, posing as internal/server: the
// service layer promises ms-latency cancellation over the wire (a
// Cancel frame or a dropped connection must abort server-side work),
// so its tuple loops — COPY ingest, result staging — are in scope. The
// shapes here mirror the real session: the context arrives through a
// struct field, not a parameter.
package server

import (
	"context"

	"github.com/audb/audb/internal/ctxpoll"
)

// Tuple stands in for core.Tuple; the analyzer matches tuple-ness by
// type name.
type Tuple struct{ A int }

// copyState mirrors the per-COPY ingest state: the stream's context and
// its amortized poll ride in fields, putting every method in reach.
type copyState struct {
	ctx  context.Context
	poll *ctxpoll.Poll
	rows []Tuple
}

func (cp *copyState) ingestUnpolled(chunk []Tuple) {
	for _, t := range chunk { // want `does not reach a cancellation poll`
		cp.rows = append(cp.rows, t)
	}
}

func (cp *copyState) ingestPolled(chunk []Tuple) error {
	for _, t := range chunk {
		if err := cp.poll.Due(); err != nil {
			return err
		}
		cp.rows = append(cp.rows, t)
	}
	return nil
}

// session mirrors the connection handler: its base context is a field.
type session struct {
	ctx context.Context
}

func (se *session) stageUnpolled(ts []Tuple) int {
	n := 0
	for i := 0; i < len(ts); i++ { // want `does not reach a cancellation poll`
		n += ts[i].A
	}
	return n
}

func (se *session) stagePolled(ts []Tuple) (int, error) {
	n := 0
	for i := 0; i < len(ts); i++ {
		if err := se.ctx.Err(); err != nil {
			return 0, err
		}
		n += ts[i].A
	}
	return n, nil
}

// encodeRows has no context anywhere in reach: a pure kernel owned by a
// polled caller, exempt.
func encodeRows(ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += t.A
	}
	return n
}
