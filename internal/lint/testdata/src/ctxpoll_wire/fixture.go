// Fixture for the ctxpoll analyzer, posing as internal/wire: the codec
// is mostly pure (no context in reach, exempt), but any context-bearing
// helper that walks tuples — e.g. a streaming encoder bound to a
// request's lifetime — must poll like the executor kernels do.
package wire

import "context"

type Tuple struct{ A int }

func streamUnpolled(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts { // want `does not reach a cancellation poll`
		n += t.A
	}
	return n
}

func streamPolled(ctx context.Context, ts []Tuple) (int, error) {
	n := 0
	for _, t := range ts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n += t.A
	}
	return n, nil
}

// encodeTuples is the codec's normal shape: no context in reach, a pure
// kernel whose caller owns cancellation. Exempt.
func encodeTuples(ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += t.A
	}
	return n
}
