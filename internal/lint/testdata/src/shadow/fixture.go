// Fixture for the (natively reimplemented) shadow analyzer.
package shadow

func shadowedAndUsedAfter(cond bool) int {
	x := 1
	if cond {
		x := 2 // want `shadows declaration at line 5`
		_ = x
	}
	return x
}

func shadowedErr(cond bool) error {
	var err error
	if cond {
		err := doWork() // want `shadows declaration at line 14`
		_ = err
	}
	return err
}

func notUsedAfter(cond bool) int {
	x := 1
	y := x
	if cond {
		x := 2 // outer x is dead after this scope: not reported
		return x + y
	}
	return y
}

func differentType(cond bool) int {
	x := 1
	if cond {
		x := "two" // different type: a deliberate reuse, not reported
		_ = x
	}
	return x
}

func ifInitIdiom(cond bool) error {
	var err error
	if cond {
		err = doWork()
	}
	if err := doWork(); err != nil { // statement-scoped idiom: not reported
		return err
	}
	return err
}

func doWork() error { return nil }
