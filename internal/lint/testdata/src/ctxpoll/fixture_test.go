// Test files are exempt: loops here never poll and must not be flagged.
package core

import "context"

func helperForTests(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += t.A
	}
	return n
}
