// Fixture for the ctxpoll analyzer, posing as internal/core: tuple and
// batch loops in context-bearing functions must reach a cancellation
// poll.
package core

import (
	"context"

	"github.com/audb/audb/internal/ctxpoll"
)

// Tuple stands in for the executor's tuple type; the analyzer matches
// tuple-ness by type name.
type Tuple struct{ A int }

func unpolledRange(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts { // want `does not reach a cancellation poll`
		n += t.A
	}
	return n
}

func unpolledIndex(ctx context.Context, ts []Tuple) int {
	n := 0
	for i := 0; i < len(ts); i++ { // want `does not reach a cancellation poll`
		n += ts[i].A
	}
	return n
}

func unpolledBatches(ctx context.Context, batches [][]Tuple) int {
	n := 0
	for _, b := range batches { // want `does not reach a cancellation poll`
		n += len(b)
	}
	return n
}

func polledDue(ctx context.Context, ts []Tuple) (int, error) {
	p := ctxpoll.New(ctx)
	n := 0
	for _, t := range ts {
		if err := p.Due(); err != nil {
			return 0, err
		}
		n += t.A
	}
	return n, nil
}

func polledErr(ctx context.Context, ts []Tuple) (int, error) {
	n := 0
	for _, t := range ts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n += t.A
	}
	return n, nil
}

func polledViaHelper(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += observe(ctx, t) // handing ctx down delegates the check
	}
	return n
}

func observe(ctx context.Context, t Tuple) int { return t.A }

// pollIter carries its poll in a field; emit polls, so the drain loop
// that calls it is compliant through same-package helper recursion.
type pollIter struct {
	poll *ctxpoll.Poll
	out  []Tuple
}

func (s *pollIter) drain(ts []Tuple) error {
	for _, t := range ts {
		if err := s.emit(t); err != nil {
			return err
		}
	}
	return nil
}

func (s *pollIter) emit(t Tuple) error {
	if err := s.poll.Due(); err != nil {
		return err
	}
	s.out = append(s.out, t)
	return nil
}

// deaf has no context anywhere in reach: its loops are pure kernels
// owned by a polled caller, and are exempt.
func deaf(ts []Tuple) int {
	n := 0
	for _, t := range ts {
		n += t.A
	}
	return n
}

// source produces batches without ever polling.
type source struct{ left int }

func (s *source) pull() []Tuple {
	if s.left == 0 {
		return nil
	}
	s.left--
	return make([]Tuple, 8)
}

func unpolledDrain(ctx context.Context, s *source) int {
	n := 0
	for { // want `does not reach a cancellation poll`
		b := s.pull()
		if b == nil {
			return n
		}
		n += len(b)
	}
}

// srcIter is the context-bound iterator contract: Open binds ctx, Next
// observes it. Draining through it is compliant by contract.
type srcIter interface {
	Open(ctx context.Context) error
	Next() []Tuple
}

func contractDrain(ctx context.Context, it srcIter) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		b := it.Next()
		if b == nil {
			return n, nil
		}
		n += len(b)
	}
}

// Batch stands in for the columnar batch currency (vec.Batch); the
// analyzer matches batch-ness by type name, through a pointer.
type Batch struct {
	N   int
	Sel []int
}

// batchSource produces columnar batches without ever polling.
type batchSource struct{ left int }

func (s *batchSource) pull() *Batch {
	if s.left == 0 {
		return nil
	}
	s.left--
	return &Batch{N: 8}
}

func unpolledBatchDrain(ctx context.Context, s *batchSource) int {
	n := 0
	for { // want `does not reach a cancellation poll`
		b := s.pull()
		if b == nil {
			return n
		}
		n += b.N
	}
}

// polledBatchDrain is the sanctioned vectorized shape: one poll per
// batch amortizes the cancellation check over the whole columnar kernel
// (the per-element loops over b.Sel are owned by the polled batch loop).
func polledBatchDrain(ctx context.Context, s *batchSource) (int, error) {
	p := ctxpoll.New(ctx)
	n := 0
	for {
		b := s.pull()
		if b == nil {
			return n, nil
		}
		if err := p.Due(); err != nil {
			return 0, err
		}
		for _, i := range b.Sel {
			n += i
		}
	}
}

// batchIter is the batch form of the context-bound iterator contract.
type batchIter interface {
	Open(ctx context.Context) error
	Next() *Batch
}

func batchContractDrain(ctx context.Context, it batchIter) (int, error) {
	if err := it.Open(ctx); err != nil {
		return 0, err
	}
	n := 0
	for {
		b := it.Next()
		if b == nil {
			return n, nil
		}
		n += b.N
	}
}

func suppressed(ctx context.Context, ts []Tuple) int {
	n := 0
	//lint:allow audblint-ctxpoll cold diagnostic path, bounded input
	for _, t := range ts {
		n += t.A
	}
	return n
}
