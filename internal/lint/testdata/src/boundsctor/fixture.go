// Fixture for the boundsctor analyzer: constructing rangeval.V outside
// internal/rangeval must go through the exported constructors.
package boundsctor

import (
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

func flagged() {
	_ = rangeval.V{Lo: types.Int(1), SG: types.Int(2), Hi: types.Int(3)} // want `composite literal bypasses`
	_ = rangeval.V{SG: types.Int(2)}                                     // want `composite literal bypasses`
	_ = []rangeval.V{
		{Lo: types.Int(1), SG: types.Int(1), Hi: types.Int(1)}, // want `composite literal bypasses`
	}
	_ = rangeval.Tuple{
		{Lo: types.Int(0), SG: types.Int(0), Hi: types.Int(9)}, // want `composite literal bypasses`
	}
	var v rangeval.V
	v.Lo = types.Int(1) // want `write to rangeval.V.Lo`
	v.SG = types.Int(2) // want `write to rangeval.V.SG`
	v.Hi = types.Int(3) // want `write to rangeval.V.Hi`
	_ = &v.Hi           // want `taking the address of rangeval.V.Hi`
	_ = v
}

func clean() {
	_, _ = rangeval.V{}, []rangeval.V{{}} // zero values: the "no value" convention
	_ = rangeval.Certain(types.Int(1))
	_ = rangeval.New(types.Int(1), types.Int(2), types.Int(3))
	v, err := rangeval.Checked(types.Int(1), types.Int(2), types.Int(3))
	_, _ = v, err
	_ = rangeval.Full(types.Int(2))
	_ = v.Union(rangeval.Certain(types.Int(5)))
	_ = v.Lo                          // reads are fine
	u := rangeval.V{SG: types.Int(7)} //lint:allow audblint-boundsctor exercising the suppression syntax
	_ = u
}

// mult has fields named like V's; writes to it are not our business.
type mult struct{ Lo, SG, Hi int64 }

func otherTriple() {
	var m mult
	m.Lo, m.SG, m.Hi = 1, 2, 3
	_ = mult{Lo: 1, SG: 1, Hi: 1}
}
