// Fixture for the boundsctor analyzer: constructing rangeval.V outside
// internal/rangeval must go through the exported constructors.
package boundsctor

import (
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

func flagged() {
	_ = rangeval.V{Lo: types.Int(1), SG: types.Int(2), Hi: types.Int(3)} // want `composite literal bypasses`
	_ = rangeval.V{SG: types.Int(2)}                                     // want `composite literal bypasses`
	_ = []rangeval.V{
		{Lo: types.Int(1), SG: types.Int(1), Hi: types.Int(1)}, // want `composite literal bypasses`
	}
	_ = rangeval.Tuple{
		{Lo: types.Int(0), SG: types.Int(0), Hi: types.Int(9)}, // want `composite literal bypasses`
	}
	var v rangeval.V
	v.Lo = types.Int(1) // want `write to rangeval.V.Lo`
	v.SG = types.Int(2) // want `write to rangeval.V.SG`
	v.Hi = types.Int(3) // want `write to rangeval.V.Hi`
	_ = &v.Hi           // want `taking the address of rangeval.V.Hi`
	_ = v
}

func clean() {
	_, _ = rangeval.V{}, []rangeval.V{{}} // zero values: the "no value" convention
	_ = rangeval.Certain(types.Int(1))
	_ = rangeval.New(types.Int(1), types.Int(2), types.Int(3))
	v, err := rangeval.Checked(types.Int(1), types.Int(2), types.Int(3))
	_, _ = v, err
	_ = rangeval.Full(types.Int(2))
	_ = v.Union(rangeval.Certain(types.Int(5)))
	_ = v.Lo                          // reads are fine
	u := rangeval.V{SG: types.Int(7)} //lint:allow audblint-boundsctor exercising the suppression syntax
	_ = u
}

// Sparse columns: the raw storage fields are read-only outside rangeval.
func flaggedCol() {
	_ = rangeval.Col{Flat: []types.Value{types.Int(1)}} // want `composite literal bypasses the column invariants`
	var c rangeval.Col
	c.Flat = []types.Value{types.Int(1)}        // want `write to rangeval.Col.Flat`
	c.Dense = []rangeval.V{}                    // want `write to rangeval.Col.Dense`
	c.Nulls = 3                                 // want `write to rangeval.Col.Nulls`
	c.Nulls++                                   // want `write to rangeval.Col.Nulls`
	c.Flat[0] = types.Null()                    // want `pokes the raw column storage`
	c.Dense[0] = rangeval.Certain(types.Int(1)) // want `pokes the raw column storage`
	_ = &c.Flat                                 // want `taking the address of rangeval.Col.Flat`
	_ = c
}

func cleanCol() {
	var b rangeval.ColBuilder
	b.Append(rangeval.Certain(types.Int(1)))
	c := b.Build()
	_ = c.Flat    // reads are fine
	_ = c.Flat[0] // indexed reads too
	_, _, _ = c.At(0), c.Len(), c.IsFlat()
	_ = rangeval.Col{}          // zero value stays legal
	d := rangeval.Col{Nulls: 1} //lint:allow audblint-boundsctor exercising the suppression syntax
	_ = d
}

// mult has fields named like V's; writes to it are not our business.
type mult struct{ Lo, SG, Hi int64 }

func otherTriple() {
	var m mult
	m.Lo, m.SG, m.Hi = 1, 2, 3
	_ = mult{Lo: 1, SG: 1, Hi: 1}
}

// colLike has fields named like Col's; writes to it are not our business.
type colLike struct {
	Flat  []int
	Nulls int
}

func otherCol() {
	var c colLike
	c.Flat = []int{1}
	c.Flat[0] = 2
	c.Nulls++
	_ = colLike{Nulls: 1}
}
