// Fixture for catalogsnap's cross-package rule as seen from the service
// layer, posing as internal/server: session handlers resolve tables
// through the Catalog's API, never its fields (imports the fake core
// fixture checked earlier in the same run).
package server

import core "github.com/audb/audb/internal/core"

func handleListTables(c *core.Catalog) int {
	n := 0
	for _, v := range c.Rels { // want `direct access to core.Catalog field Rels`
		n += v
	}
	return n
}

func handleListTablesSanctioned(c *core.Catalog) int {
	n := 0
	for _, v := range c.Snapshot() {
		n += v
	}
	return n
}
