// Fixture for the gatedoc analyzer, posing as internal/opt: every
// registered rewrite rule needs a sound:/gated: doc comment with a
// paper reference.
package opt

// rule mirrors the optimizer's registration record (matched by type
// name and package path).
type rule struct {
	name  string
	apply func(int) int
}

// goodRule folds constants.
//
// sound: result-exact on every input — the folded expression evaluates
// identically under range semantics (Section 7).
func goodRule(x int) int { return x }

// gatedRule pushes selections.
//
// gated: never pushes below Diff, where the bound-preserving monus is
// not distributive (Theorem 4).
func gatedRule(x int) int { return x }

// badRule has no soundness justification at all.
func badRule(x int) int { return x }

// vagueRule claims soundness without citing the paper.
//
// sound: trust me.
func vagueRule(x int) int { return x }

func rules() []rule {
	return []rule{
		{"good", goodRule},
		{name: "gated", apply: gatedRule},
		{"bad", badRule},                         // want `lacks a soundness comment`
		{"vague", vagueRule},                     // want `lacks a soundness comment`
		{"inline", func(x int) int { return x }}, // want `inline func literal`
	}
}

// sink keeps the registry referenced.
var _ = rules
