package phys

// Breakers materialize by contract; cloning here is sanctioned.
func breakerStep(r *rel) *rel {
	return r.Clone()
}
