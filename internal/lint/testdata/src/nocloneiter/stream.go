// Fixture for the nocloneiter analyzer, posing as internal/phys:
// streaming operator files must not deep-copy.
package phys

import "strings"

type rel struct{ rows []int }

func (r *rel) Clone() *rel {
	out := &rel{rows: make([]int, len(r.rows))}
	copy(out.rows, r.rows)
	return out
}

func (r *rel) ShallowClone() *rel {
	cp := *r
	return &cp
}

func streamStep(r *rel) *rel {
	return r.Clone() // want `deep Clone\(\) in a streaming phys path`
}

func streamView(r *rel) *rel {
	return r.ShallowClone()
}

func stdlibCloneIsFine(s string) string {
	return strings.Clone(s)
}

func suppressedClone(r *rel) *rel {
	return r.Clone() //lint:allow audblint-nocloneiter one-off root copy, measured free
}
