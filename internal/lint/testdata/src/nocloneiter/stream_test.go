package phys

// Tests enumerate worlds and may clone freely.
func cloneForTest(r *rel) *rel {
	return r.Clone()
}
