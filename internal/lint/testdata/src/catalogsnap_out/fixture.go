// Fixture for catalogsnap's cross-package rule: other packages must go
// through the Catalog's API, never its fields (imports the fake core
// fixture checked just before this one).
package out

import core "github.com/audb/audb/internal/core"

func reads(c *core.Catalog) int {
	n := 0
	for _, v := range c.Rels { // want `direct access to core.Catalog field Rels`
		n += v
	}
	return n
}

func sanctioned(c *core.Catalog) int {
	n := 0
	for _, v := range c.Snapshot() {
		n += v
	}
	return n
}
