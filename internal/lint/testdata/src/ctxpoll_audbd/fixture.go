// Fixture for the ctxpoll analyzer, posing as cmd/audbd: the daemon's
// own tuple walks (startup table loads wired to the shutdown context)
// are in scope alongside the server packages.
package main

import "context"

type Tuple struct{ A int }

func loadUnpolled(ctx context.Context, ts []Tuple) int {
	n := 0
	for _, t := range ts { // want `does not reach a cancellation poll`
		n += t.A
	}
	return n
}

func loadPolled(ctx context.Context, ts []Tuple) (int, error) {
	n := 0
	for _, t := range ts {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		n += t.A
	}
	return n, nil
}
