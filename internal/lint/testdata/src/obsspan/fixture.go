// Fixture for the obsspan analyzer, posing as internal/server: the
// service layer starts request spans around every query, so a span
// whose End can never run silently truncates the trace the \server and
// \trace commands report. The shapes mirror the real session code —
// sampled spans behind a nil guard, admission-wait children, hand-offs
// to the recorder.
package server

import (
	"github.com/audb/audb/internal/obs"
)

// recorder stands in for the server's trace ring.
type recorder struct{ rec *obs.Recorder }

func discarded() {
	obs.StartSpan("request") // want `result of StartSpan\("request"\) is discarded`
}

func blankBound() {
	_ = obs.StartSpan("request") // want `assigned to the blank identifier`
}

func neverEnded() {
	sp := obs.StartSpan("request") // want `span sp from StartSpan\("request"\) is never ended or handed off`
	sp.SetInt("id", 1)             // attribute calls alone do not end a span
}

func childDiscarded(sp *obs.Span) {
	sp.StartChild("admission.wait") // want `result of StartChild\("admission.wait"\) is discarded`
}

func childNeverEnded(sp *obs.Span) {
	wait := sp.StartChild("admission.wait") // want `span wait from StartChild\("admission.wait"\) is never ended`
	wait.SetAttr("k", "v")
}

// --- clean shapes ---

func endedDirectly() {
	sp := obs.StartSpan("request")
	sp.SetInt("id", 1)
	sp.End()
}

func endedDeferred() {
	sp := obs.StartSpan("request")
	defer sp.End()
}

func childEnded(sp *obs.Span) {
	wait := sp.StartChild("admission.wait")
	wait.End()
}

func chainedEnd(sp *obs.Span) {
	// The StartChild result is the receiver of End: used, not discarded.
	sp.StartChild("execute").End()
}

func returned() *obs.Span {
	sp := obs.StartSpan("request")
	sp.SetAttr("k", "v")
	return sp
}

func recorded(r *recorder) {
	sp := obs.StartSpan("request")
	sp.End()
	r.rec.Record(sp) // hand-off by argument
}

func handedOffOnly(r *recorder) {
	// Passing the span away delegates End to the receiver; a
	// single-function analysis accepts the hand-off.
	sp := obs.StartSpan("request")
	r.rec.Record(sp)
}

func attached(root *obs.Span) {
	child := root.StartChild("execute")
	root.Attach(child) // hand-off by argument
}

type traced struct{ sp *obs.Span }

func storedInField(t *traced) {
	// Stored into a field: the span outlives this function; End is the
	// holder's job.
	t.sp = obs.StartSpan("request")
}

func storedOnward() *traced {
	sp := obs.StartSpan("request")
	return &traced{sp: sp} // escapes via composite literal
}

func nilGuarded(sample bool) {
	// The real session shape: the span only exists on sampled requests.
	var sp *obs.Span
	if sample {
		sp = obs.StartSpan("request")
	}
	work(sp)
	if sp != nil {
		sp.End()
	}
}

func work(sp *obs.Span) {
	ex := sp.StartChild("execute")
	ex.End()
}
