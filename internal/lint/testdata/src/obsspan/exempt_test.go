// Test files are exempt: tests start throwaway spans to probe the
// recorder and rendering, and leaking one cannot corrupt a production
// trace. No want comments here — the analyzer must stay silent.
package server

import "github.com/audb/audb/internal/obs"

func testOnlyDiscard() {
	obs.StartSpan("throwaway")
}
