// Fixture posing as internal/obs itself: the package that implements
// spans is exempt (its constructors and tests juggle half-built spans
// freely), so even a discarded Start result must stay silent. The local
// Span type type-checks as obs.Span because the fixture claims the obs
// import path.
package obs

// Span mirrors the real type closely enough for the analyzer's
// result-type check.
type Span struct{ Name string }

// StartSpan would be flagged anywhere else; here the package exemption
// wins.
func StartSpan(name string) *Span { return &Span{Name: name} }

func internalUse() {
	StartSpan("scratch") // no want: the obs package is exempt
}
