// Fixture posing as internal/rangeval itself: the defining package may
// assemble triples freely (it is the chokepoint).
package rangeval

type Value struct{ n int64 }

// V mirrors the real type's shape; the analyzer identifies it by name
// and the claimed package path.
type V struct {
	Lo, SG, Hi Value
}

func constructors() {
	v := V{Lo: Value{1}, SG: Value{2}, Hi: Value{3}}
	v.Lo = Value{0}
	_ = v
}
