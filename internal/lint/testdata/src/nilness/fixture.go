// Fixture for the (syntactic) nilness analyzer.
package nilness

type node struct {
	val  int
	next *node
}

func (n *node) describe() string { return "may accept nil receiver" }

func deref(n *node) int {
	if n == nil {
		return n.val // want `n is nil on this path`
	}
	return n.val
}

func star(n *node) node {
	if n == nil {
		return *n // want `n is nil on this path`
	}
	return *n
}

func callNilFunc(f func() int) int {
	if f == nil {
		return f() // want `f is nil on this path`
	}
	return f()
}

func reassigned(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}

func methodOnNilReceiverIsLegal(n *node) string {
	if n == nil {
		return n.describe()
	}
	return n.describe()
}

func negatedGuard(n *node) int {
	if n != nil {
		return n.val
	}
	return 0
}
