package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// ctxpollPath is the package providing the amortized cancellation check.
const ctxpollPath = "github.com/audb/audb/internal/ctxpoll"

// ctxpollScope lists the executor packages whose tuple loops must stay
// cancellable (the ms-latency guarantee established in PR 2). The
// service layer is included: audbd promises that a Cancel frame or a
// dropped connection aborts server-side work in milliseconds, so its
// tuple loops (COPY ingest, result encoding) are held to the same rule.
var ctxpollScope = map[string]bool{
	"github.com/audb/audb/internal/core":     true,
	"github.com/audb/audb/internal/phys":     true,
	"github.com/audb/audb/internal/phys/vec": true,
	"github.com/audb/audb/internal/bag":      true,
	"github.com/audb/audb/internal/encoding": true,
	"github.com/audb/audb/internal/wire":     true,
	"github.com/audb/audb/internal/server":   true,
	"github.com/audb/audb/cmd/audbd":         true,
}

// Ctxpoll guards cooperative cancellation: in the executor packages,
// every loop over tuples or batches that runs in a context-bearing
// function must reach a cancellation check — a ctxpoll.Poll.Due or
// ctx.Err call, a ctx.Done select, a call to a helper (same package,
// transitively) that polls, a call that is handed the ctx or poll, or a
// call through the package's context-bound iterator contract (an
// interface whose Open takes a context). Loops in functions with no
// context in reach are pure kernels owned by a polled caller and are
// exempt, as are _test.go files.
var Ctxpoll = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc: "require tuple/batch loops in internal/{core,phys,phys/vec,bag,encoding,wire,server} " +
		"and cmd/audbd to reach a cancellation poll (ctxpoll.Poll.Due, " +
		"ctx.Err, or a helper that observes the context), preserving " +
		"ms-latency query cancellation as new kernels land; batch drains " +
		"(*vec.Batch pulls) may amortize to one poll per batch",
	Run: runCtxpoll,
}

func runCtxpoll(pass *analysis.Pass) (any, error) {
	if !ctxpollScope[pass.Pkg.Path()] {
		return nil, nil
	}
	c := &ctxpollCheck{pass: pass, decls: map[types.Object]*ast.FuncDecl{}, memo: map[types.Object]bool{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !c.hasContextInReach(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncLit:
					return false // closures are separate cancellation domains
				case *ast.RangeStmt:
					if !c.isTupleIterable(n.X) {
						return true
					}
					body = n.Body
				case *ast.ForStmt:
					if !c.isTupleForLoop(n) {
						return true
					}
					body = n.Body
				default:
					return true
				}
				if !c.bodyPolls(body, 0, map[types.Object]bool{}) {
					c.pass.Reportf(n.Pos(), "loop over tuples/batches does not reach a cancellation poll; call (*ctxpoll.Poll).Due or ctx.Err in the loop, or hand the context to a helper that does")
				}
				return true
			})
		}
	}
	return nil, nil
}

type ctxpollCheck struct {
	pass  *analysis.Pass
	decls map[types.Object]*ast.FuncDecl
	memo  map[types.Object]bool // declared function -> polls on every path into its loops
}

// hasContextInReach reports whether fd can observe a context at all: a
// parameter or receiver (directly, or via a struct field) of type
// context.Context or *ctxpoll.Poll.
func (c *ctxpollCheck) hasContextInReach(fd *ast.FuncDecl) bool {
	obj := c.pass.TypesInfo.Defs[fd.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isCtxOrPoll(sig.Params().At(i).Type()) {
			return true
		}
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				if isCtxOrPoll(st.Field(i).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func isCtxOrPoll(t types.Type) bool {
	if isContext(t) {
		return true
	}
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Poll" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == ctxpollPath
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Context" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "context"
}

// isTupleIterable reports whether ranging over x visits tuples or
// batches: a slice/array whose element type is a named "Tuple" (core,
// rangeval, bag, ...) or a slice of such (a batch stream).
func (c *ctxpollCheck) isTupleIterable(x ast.Expr) bool {
	return isTupleSlice(c.pass.TypesInfo.TypeOf(x))
}

func isTupleSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	if isNamedTuple(elem) || isBatch(elem) {
		return true
	}
	// A slice whose elements are themselves tuple slices is a batch
	// sequence ([][]core.Tuple).
	if s, ok := elem.Underlying().(*types.Slice); ok {
		return isNamedTuple(s.Elem())
	}
	return false
}

func isNamedTuple(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tuple"
}

// isBatch matches the columnar batch currency of the vectorized executor
// (a named "Batch" or pointer to one, e.g. *vec.Batch): a loop pulling
// batches must poll just like one pulling tuple slices. Vectorized kernels
// poll once per batch, not per row — the amortization the rule sanctions.
func isBatch(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Batch"
}

// isTupleForLoop reports whether a 3-clause or bare for loop iterates
// tuples: its condition compares against len() of a tuple iterable, or
// its body pulls tuple batches from a call (a drain loop).
func (c *ctxpollCheck) isTupleForLoop(n *ast.ForStmt) bool {
	tuple := false
	if n.Cond != nil {
		ast.Inspect(n.Cond, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 && c.isTupleIterable(call.Args[0]) {
					tuple = true
				}
			}
			return !tuple
		})
		return tuple
	}
	// for {} with a tuple-batch producing call in the body: a drain loop
	// (pulling []core.Tuple or *vec.Batch alike).
	ast.Inspect(n.Body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops judged on their own
		case *ast.CallExpr:
			if r := firstResult(c.pass.TypesInfo.TypeOf(m)); isTupleSlice(r) || isBatch(r) {
				tuple = true
			}
		}
		return !tuple
	})
	return tuple
}

// firstResult unwraps a call's (possibly multi-valued) result type.
func firstResult(t types.Type) types.Type {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return t
}

// bodyPolls reports whether the statement block reaches a cancellation
// check, chasing same-package helpers up to a small depth.
func (c *ctxpollCheck) bodyPolls(body ast.Node, depth int, visiting map[types.Object]bool) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if c.callPolls(call, depth, visiting) {
			polls = true
			return false
		}
		return true
	})
	return polls
}

func (c *ctxpollCheck) callPolls(call *ast.CallExpr, depth int, visiting map[types.Object]bool) bool {
	// A call that is handed the context or a poll delegates the check.
	for _, arg := range call.Args {
		if isCtxOrPoll(c.pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	sel, _ := call.Fun.(*ast.SelectorExpr)
	if sel != nil {
		recvT := c.pass.TypesInfo.TypeOf(sel.X)
		switch sel.Sel.Name {
		case "Due":
			if isCtxOrPoll(recvT) {
				return true
			}
		case "Err", "Done":
			if isContext(recvT) {
				return true
			}
		}
	}
	// Resolve the callee: same-package helpers are chased into their
	// bodies; calls through a context-bound iterator contract (an
	// interface declared with an Open(ctx) method) poll by contract.
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
			if ifaceObservesContext(iface) {
				return true
			}
		}
	}
	if depth >= 4 || visiting[fn] {
		return false
	}
	if v, ok := c.memo[fn]; ok {
		return v
	}
	decl, ok := c.decls[fn]
	if !ok || decl.Body == nil {
		return false
	}
	visiting[fn] = true
	v := c.bodyPolls(decl.Body, depth+1, visiting)
	delete(visiting, fn)
	c.memo[fn] = v
	return v
}

// ifaceObservesContext reports whether the interface binds a context at
// Open time (the iterator contract: Open(ctx) ... Next observes it).
func ifaceObservesContext(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		sig := m.Type().(*types.Signature)
		if m.Name() == "Open" && sig.Params().Len() >= 1 && isContext(sig.Params().At(0).Type()) {
			return true
		}
	}
	return false
}
