// Package lint is audblint: a suite of static analyzers that
// machine-check the AU-DB engine's soundness invariants — properties the
// paper states but the Go compiler cannot see. Each analyzer guards one
// invariant; see Analyzers for the roster and README.md ("Static analysis
// & invariants") for the rationale.
//
// The loader in this file type-checks packages without any dependency on
// golang.org/x/tools/go/packages (unavailable offline): it shells out to
// `go list -export -deps -test -json`, which compiles dependencies into
// the build cache and reports the path of each package's export data,
// then parses the target packages from source and type-checks them with
// go/types using a gc-importer lookup that serves those export files.
// Test variants ("pkg [pkg.test]") are analyzed in place of their plain
// package so _test.go files are covered too.
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// GoListPkg is the subset of `go list -json` output the loader consumes.
type GoListPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	ForTest    string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Unit is one type-checked package ready for analysis.
type Unit struct {
	Path      string // import path as analyzers see it (test-variant suffix stripped)
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// GoList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func GoList(dir string, args ...string) ([]*GoListPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*GoListPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p GoListPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ModuleRoot locates the enclosing module's root directory.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("lint: not inside a module (dir %s)", dir)
	}
	return filepath.Dir(gomod), nil
}

// baseImportPath strips the " [pkg.test]" suffix test variants carry.
func baseImportPath(p string) string {
	if i := strings.Index(p, " ["); i >= 0 {
		return p[:i]
	}
	return p
}

// Load lists, parses and type-checks the packages matching patterns
// (relative to dir), returning one Unit per analyzable package. Test
// variants replace their plain package; synthesized ".test" mains are
// skipped. Only packages of the enclosing module are returned —
// dependencies are consumed as export data.
func Load(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"-export", "-deps", "-test", "-json"}, patterns...)
	pkgs, err := GoList(dir, args...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: package %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// The module under analysis is the one the patterns resolve in.
	modPath := ""
	for _, p := range pkgs {
		if p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	// Augmented test variants ("pkg [pkg.test]") contain the plain
	// package's files plus its _test.go files; analyze those instead of
	// the plain package to avoid double-reporting.
	hasVariant := map[string]bool{}
	for _, p := range pkgs {
		if p.ForTest != "" && baseImportPath(p.ImportPath) == p.ForTest {
			hasVariant[p.ForTest] = true
		}
	}
	var units []*Unit
	for _, p := range pkgs {
		if p.Module == nil || (modPath != "" && p.Module.Path != modPath) {
			continue // dependency: export data only
		}
		base := baseImportPath(p.ImportPath)
		if strings.HasSuffix(base, ".test") {
			continue // synthesized test main
		}
		if p.ImportPath == base && hasVariant[base] {
			continue // replaced by its augmented test variant
		}
		u, err := check(p, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i].Path < units[j].Path })
	return units, nil
}

// check parses and type-checks one listed package against the export
// data of its dependencies.
func check(p *GoListPkg, exports map[string]string) (*Unit, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	base := baseImportPath(p.ImportPath)
	pkg, err := conf.Check(base, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Unit{Path: base, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// NewTypesInfo allocates the go/types fact maps the analyzers consume.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
