package lint_test

import (
	"testing"

	"github.com/audb/audb/internal/lint"
	"github.com/audb/audb/internal/lint/linttest"
)

// The fixture packages pose as the real packages the analyzers are
// scoped to (see linttest); each contains both flagged and clean cases.

func TestBoundsctor(t *testing.T) {
	linttest.Run(t, lint.Boundsctor,
		linttest.Pkg{Dir: "testdata/src/boundsctor", Path: "github.com/audb/audb/internal/lintfixture/boundsctor"},
		linttest.Pkg{Dir: "testdata/src/boundsctor_inside", Path: "github.com/audb/audb/internal/rangeval"},
	)
}

func TestCtxpoll(t *testing.T) {
	linttest.Run(t, lint.Ctxpoll,
		linttest.Pkg{Dir: "testdata/src/ctxpoll", Path: "github.com/audb/audb/internal/core"},
	)
}

// TestCtxpollServiceLayer: the service layer is in scope too — audbd's
// over-the-wire cancellation promise holds it to the same polling rule.
func TestCtxpollServiceLayer(t *testing.T) {
	linttest.Run(t, lint.Ctxpoll,
		linttest.Pkg{Dir: "testdata/src/ctxpoll_server", Path: "github.com/audb/audb/internal/server"},
		linttest.Pkg{Dir: "testdata/src/ctxpoll_wire", Path: "github.com/audb/audb/internal/wire"},
		linttest.Pkg{Dir: "testdata/src/ctxpoll_audbd", Path: "github.com/audb/audb/cmd/audbd"},
	)
}

func TestCtxpollOutOfScopePackage(t *testing.T) {
	// The same fixture under a non-executor path must be silent.
	linttest.Run(t, lint.Ctxpoll,
		linttest.Pkg{Dir: "testdata/src/ctxpoll_quiet", Path: "github.com/audb/audb/internal/lintfixture/quiet"},
	)
}

func TestCatalogsnap(t *testing.T) {
	linttest.Run(t, lint.Catalogsnap,
		linttest.Pkg{Dir: "testdata/src/catalogsnap_core", Path: "github.com/audb/audb/internal/core"},
		linttest.Pkg{Dir: "testdata/src/catalogsnap_out", Path: "github.com/audb/audb/internal/lintfixture/out"},
		linttest.Pkg{Dir: "testdata/src/catalogsnap_server", Path: "github.com/audb/audb/internal/server"},
	)
}

func TestNocloneiter(t *testing.T) {
	linttest.Run(t, lint.Nocloneiter,
		linttest.Pkg{Dir: "testdata/src/nocloneiter", Path: "github.com/audb/audb/internal/phys"},
	)
}

func TestGatedoc(t *testing.T) {
	linttest.Run(t, lint.Gatedoc,
		linttest.Pkg{Dir: "testdata/src/gatedoc", Path: "github.com/audb/audb/internal/opt"},
	)
}

// TestObsspan: a started span must be ended or handed off; the obs
// package itself is exempt (the second fixture claims its import path,
// so it must run after the first, which imports the real obs).
func TestObsspan(t *testing.T) {
	linttest.Run(t, lint.Obsspan,
		linttest.Pkg{Dir: "testdata/src/obsspan", Path: "github.com/audb/audb/internal/server"},
		linttest.Pkg{Dir: "testdata/src/obsspan_obs", Path: "github.com/audb/audb/internal/obs"},
	)
}

func TestShadow(t *testing.T) {
	linttest.Run(t, lint.Shadow,
		linttest.Pkg{Dir: "testdata/src/shadow", Path: "github.com/audb/audb/internal/lintfixture/shadow"},
	)
}

func TestNilness(t *testing.T) {
	linttest.Run(t, lint.Nilness,
		linttest.Pkg{Dir: "testdata/src/nilness", Path: "github.com/audb/audb/internal/lintfixture/nilness"},
	)
}

// TestSuiteCleanOnRepo is the in-tree version of the CI gate: the whole
// module must be free of findings. Skipped with -short (it compiles the
// full module and every test variant).
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module; run without -short")
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := lint.Run(root, lint.Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
