// Package linttest is audblint's fixture harness, mirroring
// golang.org/x/tools/go/analysis/analysistest (unavailable offline):
// fixture packages live under testdata (invisible to the go tool), carry
// `// want "regexp"` comments on the lines where diagnostics are
// expected, and a test fails on any unmatched diagnostic or unmatched
// expectation.
//
// Unlike analysistest, a fixture declares the import path it poses as,
// so analyzers scoped to real packages (internal/core, internal/opt, …)
// can be exercised without their production source: a fixture claiming
// the path is type-checked as that package. Fixtures may import the real
// module's packages; their export data is compiled on demand via
// `go list -export`.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/audb/audb/internal/lint"
	"github.com/audb/audb/internal/lint/analysis"
)

// Pkg is one fixture package: the directory holding its .go files and
// the import path it claims.
type Pkg struct {
	Dir  string // relative to the test's working directory
	Path string // import path the fixture poses as
}

var (
	exportOnce sync.Once
	exportErr  error
	exportMap  map[string]string
)

// moduleExports compiles the real module once per test process and
// returns import path -> export data file.
func moduleExports() (map[string]string, error) {
	exportOnce.Do(func() {
		root, err := lint.ModuleRoot(".")
		if err != nil {
			exportErr = err
			return
		}
		pkgs, err := lint.GoList(root, "-export", "-deps", "-json", "./...")
		if err != nil {
			exportErr = err
			return
		}
		exportMap = map[string]string{}
		for _, p := range pkgs {
			if p.Export != "" {
				exportMap[p.ImportPath] = p.Export
			}
		}
	})
	return exportMap, exportErr
}

// Run type-checks the fixture packages in order (later fixtures may
// import earlier ones by their claimed paths) and applies the analyzer
// to each, matching diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...Pkg) {
	t.Helper()
	exports, err := moduleExports()
	if err != nil {
		t.Fatalf("linttest: compiling module export data: %v", err)
	}
	local := map[string]*types.Package{}
	for _, p := range pkgs {
		u, err := checkFixture(p, exports, local)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		local[p.Path] = u.Pkg
		findings, err := lint.RunUnit(u, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("linttest: running %s on %s: %v", a.Name, p.Dir, err)
		}
		matchWants(t, u, findings)
	}
}

func checkFixture(p Pkg, exports map[string]string, local map[string]*types.Package) (*lint.Unit, error) {
	entries, err := os.ReadDir(p.Dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(p.Dir, e.Name()), nil, parser.ParseComments)
		if perr != nil {
			return nil, perr
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s has no Go files", p.Dir)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	gc := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	imp := &chainImporter{local: local, gc: gc}
	info := lint.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.Path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", p.Dir, err)
	}
	return &lint.Unit{Path: p.Path, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// chainImporter serves earlier fixture packages from memory and
// everything else from gc export data.
type chainImporter struct {
	local map[string]*types.Package
	gc    types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.gc.ImportFrom(path, dir, mode)
}

// wantRe matches one expectation inside a `// want` comment — a
// double-quoted or backquoted regexp; several may appear in one comment.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func matchWants(t *testing.T, u *lint.Unit, findings []lint.Finding) {
	t.Helper()
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(text[len("want "):], -1) {
					src := m[1]
					if m[2] != "" {
						src = m[2]
					}
					pat, err := regexp.Compile(src)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, src, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: pat})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
