package lint

import "github.com/audb/audb/internal/lint/analysis"

// Analyzers returns the gating audblint suite in reporting order: the
// custom invariant checkers first, then bundled nilness. The slice
// is freshly allocated; callers may filter it.
//
// Shadow is deliberately absent: like `go vet`, we found err-shadowing
// too idiomatic in Go to gate on. It stays available through
// AllAnalyzers (audblint -shadow, or -only shadow).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Boundsctor,
		Ctxpoll,
		Catalogsnap,
		Nocloneiter,
		Gatedoc,
		Obsspan,
		Nilness,
	}
}

// AllAnalyzers returns every analyzer the suite ships, including the
// non-gating ones.
func AllAnalyzers() []*analysis.Analyzer {
	return append(Analyzers(), Shadow)
}
