package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/audb/audb/internal/lint/analysis"
)

// optPath is the logical optimizer package.
const optPath = "github.com/audb/audb/internal/opt"

// Soundness-comment shape: a "sound:" or "gated:" marker plus a concrete
// reference into the paper (a Section/Definition/Theorem/Lemma number),
// so "trust me" comments do not pass.
var (
	gatedocMarker   = regexp.MustCompile(`(?mi)\b(sound|gated):`)
	gatedocPaperRef = regexp.MustCompile(`(?i)(Section|Definition|Theorem|Lemma|§)\s*\d`)
)

// Gatedoc keeps PR 3's gating discipline honest: classical rewrites are
// not automatically sound under AU-DB range semantics, so every rewrite
// rule registered in internal/opt must carry a soundness comment — a
// doc comment on the rule's function containing "sound:" (why the rule
// is result-exact) or "gated:" (what it refuses to rewrite), with a
// paper-section reference. Inline func-literal rules are flagged
// outright: a rule must be a named, documentable function.
var Gatedoc = &analysis.Analyzer{
	Name: "gatedoc",
	Doc: "require every rewrite rule registered in internal/opt to carry " +
		"a 'sound:' or 'gated:' doc comment with a paper-section " +
		"reference justifying it under AU-DB range semantics",
	Run: runGatedoc,
}

func runGatedoc(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != optPath {
		return nil, nil
	}
	decls := map[types.Object]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || !isOptRuleType(pass.TypesInfo.TypeOf(lit)) {
				return true
			}
			name, apply := ruleLitFields(lit)
			if apply == nil {
				return true
			}
			switch fn := apply.(type) {
			case *ast.FuncLit:
				pass.Reportf(apply.Pos(), "rewrite rule %s is an inline func literal; rules must be named functions with a sound:/gated: doc comment", name)
			case *ast.Ident, *ast.SelectorExpr:
				var obj types.Object
				if id, ok := fn.(*ast.Ident); ok {
					obj = pass.TypesInfo.Uses[id]
				} else {
					obj = pass.TypesInfo.Uses[fn.(*ast.SelectorExpr).Sel]
				}
				fd := decls[obj]
				if fd == nil {
					pass.Reportf(apply.Pos(), "rewrite rule %s resolves outside this package; register a local named function with a sound:/gated: doc comment", name)
					return true
				}
				if !soundnessDocumented(fd.Doc) {
					pass.Reportf(apply.Pos(), "rewrite rule %s (%s) lacks a soundness comment; document why it is exact under AU-DB bounds with a '// sound:' or '// gated:' line citing a paper section", name, fd.Name.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}

// ruleLitFields extracts the rule's registered name (best effort, for
// the message) and the apply-function expression from a rule literal,
// handling both keyed and positional forms.
func ruleLitFields(lit *ast.CompositeLit) (name string, apply ast.Expr) {
	name = "(unnamed)"
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, _ := kv.Key.(*ast.Ident)
			if key == nil {
				continue
			}
			switch key.Name {
			case "name":
				if bl, ok := kv.Value.(*ast.BasicLit); ok {
					name = bl.Value
				}
			case "apply":
				apply = kv.Value
			}
			continue
		}
		switch i {
		case 0:
			if bl, ok := elt.(*ast.BasicLit); ok {
				name = bl.Value
			}
		case 1:
			apply = elt
		}
	}
	return name, apply
}

func isOptRuleType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "rule" && obj.Pkg() != nil && obj.Pkg().Path() == optPath
}

func soundnessDocumented(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	text := doc.Text()
	return gatedocMarker.MatchString(text) && gatedocPaperRef.MatchString(strings.TrimSpace(text))
}
