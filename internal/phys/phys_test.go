package phys

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/testutil"
	"github.com/audb/audb/internal/types"
)

// seqDB builds a single-table database of rows (i, i%mod) with the key
// column i wrapped in a small range so some tuples are attribute-uncertain.
func seqDB(rows, mod int) core.DB {
	rel := core.New(schema.New("k", "v"))
	for i := 0; i < rows; i++ {
		var k rangeval.V
		if i%5 == 0 {
			k = rangeval.New(types.Int(int64(i-1)), types.Int(int64(i)), types.Int(int64(i+1)))
		} else {
			k = rangeval.Certain(types.Int(int64(i)))
		}
		rel.Add(core.Tuple{
			Vals: rangeval.Tuple{k, rangeval.Certain(types.Int(int64(i % mod)))},
			M:    core.One,
		})
	}
	return core.DB{"t": rel}
}

func chainPlan(limit int) ra.Node {
	return &ra.Limit{
		N: limit,
		Child: &ra.Project{
			Cols: []ra.ProjCol{
				{E: expr.Col(1, "v"), Name: "v"},
				{E: expr.Add(expr.Col(0, "k"), expr.CInt(1)), Name: "k1"},
			},
			Child: &ra.Select{
				Child: &ra.Scan{Table: "t"},
				Pred:  expr.Lt(expr.Col(1, "v"), expr.CInt(17)),
			},
		},
	}
}

func topkPlan(limit int, desc bool) ra.Node {
	return &ra.Limit{
		N: limit,
		Child: &ra.OrderBy{
			Child: &ra.Scan{Table: "t"},
			Keys:  []int{1, 0},
			Desc:  desc,
		},
	}
}

// TestStreamingOperatorsMatchReference pins the streaming operators (and
// the top-k fusion) against the reference executor on data rich in ties
// and value-duplicates, across batch sizes and worker counts (exercising
// the exchange above minPartitionRows).
func TestStreamingOperatorsMatchReference(t *testing.T) {
	ctx := context.Background()
	rows := 3 * minPartitionRows // large enough for a parallel exchange
	db := seqDB(rows, 23)
	plans := []ra.Node{
		&ra.Scan{Table: "t"},
		chainPlan(10),
		chainPlan(0),
		chainPlan(rows * 2),
		topkPlan(7, false),
		topkPlan(7, true),
		topkPlan(0, false),
		topkPlan(rows*2, false),
		&ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{1}},
		&ra.Union{Left: &ra.Scan{Table: "t"}, Right: &ra.Scan{Table: "t"}},
	}
	for pi, plan := range plans {
		want, err := core.Exec(ctx, plan, db, core.Options{Workers: 1})
		if err != nil {
			t.Fatalf("plan %d: reference: %v", pi, err)
		}
		wantS := want.String() // unsorted: output order itself must match
		for _, g := range physOptionGrid {
			got, err := Exec(ctx, plan, db, Options{BatchSize: g.batch, Exec: core.Options{Workers: g.workers}})
			if err != nil {
				t.Fatalf("plan %d (w=%d b=%d): %v", pi, g.workers, g.batch, err)
			}
			if gotS := got.String(); gotS != wantS {
				t.Fatalf("plan %d (w=%d b=%d): output differs\nreference:\n%.400s\ngot:\n%.400s",
					pi, g.workers, g.batch, wantS, gotS)
			}
		}
	}
}

// TestTopKTiesAndDuplicates pins the fused top-k on a crafted input where
// sort keys tie, value-duplicates must fold annotations across the whole
// input, and lb/ub overlaps must not influence order (only SG does).
func TestTopKTiesAndDuplicates(t *testing.T) {
	rel := core.New(schema.New("a", "b"))
	add := func(sgA int64, loA, hiA int64, b int64, m core.Mult) {
		rel.Add(core.Tuple{Vals: rangeval.Tuple{
			rangeval.New(types.Int(loA), types.Int(sgA), types.Int(hiA)),
			rangeval.Certain(types.Int(b)),
		}, M: m})
	}
	add(2, 0, 9, 10, core.One)                       // wide range, SG 2
	add(1, 1, 1, 11, core.One)                       // certain 1
	add(2, 2, 2, 12, core.One)                       // ties SG 2 with the wide one
	add(1, 0, 5, 13, core.Mult{Lo: 0, SG: 1, Hi: 2}) // ties SG 1, overlapping range
	add(3, 3, 3, 14, core.One)
	add(2, 0, 9, 10, core.Mult{Lo: 1, SG: 2, Hi: 3}) // value-duplicate of the first: must merge
	db := core.DB{"t": rel}

	plan := &ra.Limit{N: 3, Child: &ra.OrderBy{Child: &ra.Scan{Table: "t"}, Keys: []int{0}}}
	want, err := core.Exec(context.Background(), plan, db, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 2, 1024} {
		got, err := Exec(context.Background(), plan, db, Options{BatchSize: batch, Exec: core.Options{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		if want.String() != got.String() {
			t.Fatalf("batch %d: top-k differs\nreference:\n%s\ngot:\n%s", batch, want, got)
		}
	}
}

// TestPipelinedCancellation: a mid-flight cancellation aborts a streaming
// pipeline (serial and with a parallel exchange) promptly with ctx.Err()
// and joins every producer goroutine.
func TestPipelinedCancellation(t *testing.T) {
	rows := 200000
	if testing.Short() {
		rows = 50000
	}
	db := seqDB(rows, 1<<30) // no early filter: the full stream flows
	plan := &ra.Limit{
		N: rows * 2,
		Child: &ra.Project{
			Cols:  []ra.ProjCol{{E: expr.Add(expr.Col(0, "k"), expr.Col(1, "v")), Name: "s"}},
			Child: &ra.Select{Child: &ra.Scan{Table: "t"}, Pred: expr.Leq(expr.Col(1, "v"), expr.CInt(1<<30))},
		},
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			testutil.NoLeaks(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err := Exec(ctx, plan, db, Options{Exec: core.Options{Workers: workers}})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v (after %s)", err, time.Since(start))
			}
		})
	}
}

// TestPreCancelledPipeline: an already-cancelled context must abort before
// any operator does work, in both modes.
func TestPreCancelledPipeline(t *testing.T) {
	db := seqDB(64, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{Pipelined, Materialized} {
		if _, err := Exec(ctx, chainPlan(5), db, Options{Mode: mode}); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: want context.Canceled, got %v", mode, err)
		}
	}
}

// TestPlanSingleUse: a plan executes once; re-execution is an error
// instead of silently wrong (iterators hold consumed state).
func TestPlanSingleUse(t *testing.T) {
	db := seqDB(8, 3)
	p, err := Compile(&ra.Scan{Table: "t"}, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background()); err == nil {
		t.Fatal("second Execute succeeded, want error")
	}
}

// TestCompileErrors: nil plans and unknown tables fail at compile with the
// catalog enumerated.
func TestCompileErrors(t *testing.T) {
	db := seqDB(4, 2)
	if _, err := Compile(nil, db, Options{}); err == nil {
		t.Fatal("nil plan compiled")
	}
	var typedNil *ra.Scan
	if _, err := Compile(typedNil, db, Options{}); err == nil {
		t.Fatal("typed-nil plan compiled")
	}
	_, err := Compile(&ra.Scan{Table: "missing"}, db, Options{})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("unknown table error = %v", err)
	}
	if _, err := Compile(&ra.Select{Child: nil, Pred: expr.CBool(true)}, db, Options{}); err == nil {
		t.Fatal("nil child compiled")
	}
}

// TestAnalyzeStats: the instrumented plan reports per-operator rows,
// batches and time, and the counters are consistent with the data flow.
func TestAnalyzeStats(t *testing.T) {
	rows := 200
	db := seqDB(rows, 23)
	plan := chainPlan(10)
	p, err := Compile(plan, db, Options{Analyze: true, BatchSize: 32, Exec: core.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st == nil || st.Root == nil {
		t.Fatal("no stats collected")
	}
	if st.Mode != "pipelined" || st.BatchSize != 32 {
		t.Fatalf("stats header = %q/%d", st.Mode, st.BatchSize)
	}
	if st.Total <= 0 {
		t.Fatalf("total time %v", st.Total)
	}
	// Root is the limit: it emits exactly the result rows.
	if st.Root.Rows != int64(res.Len()) {
		t.Fatalf("root rows %d, result %d", st.Root.Rows, res.Len())
	}
	if len(st.Root.Children) != 1 {
		t.Fatalf("root children = %d", len(st.Root.Children))
	}
	// The scan at the bottom emitted the whole table in rows/batch batches.
	cur := st.Root
	for len(cur.Children) > 0 {
		cur = cur.Children[0]
	}
	if cur.Rows != int64(rows) {
		t.Fatalf("leaf rows %d, want %d", cur.Rows, rows)
	}
	if want := int64((rows + 31) / 32); cur.Batches != want {
		t.Fatalf("leaf batches %d, want %d", cur.Batches, want)
	}
	out := st.String()
	for _, frag := range []string{"execution: pipelined (batch 32)", "Scan(t)", "stream", "rows="} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rendered stats missing %q:\n%s", frag, out)
		}
	}
}

// TestExchangeOrder: a parallel exchange must reproduce the serial tuple
// order exactly even when later partitions finish first.
func TestExchangeOrder(t *testing.T) {
	rows := 4 * minPartitionRows
	db := seqDB(rows, 1<<30)
	plan := &ra.Select{Child: &ra.Scan{Table: "t"}, Pred: expr.Leq(expr.Col(1, "v"), expr.CInt(1<<30))}
	want, err := Exec(context.Background(), plan, db, Options{Exec: core.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exec(context.Background(), plan, db, Options{Exec: core.Options{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatal("parallel exchange changed tuple order")
	}
}
