// Package phys is the physical execution layer between the logical plans
// of internal/ra (optimized by internal/opt) and the operator kernels of
// internal/core: it lowers a plan into a tree of pull-based batch
// iterators and executes it.
//
// In the pipelined mode (the default), Scan→Select→Project→Limit chains
// stream in fixed-size batches (vec.Batch) without materializing any
// intermediate relation and without cloning. Over a sparse base table the
// batches are columnar: struct-of-arrays views aliasing the stored
// rangeval.Col columns (flat slices where the source column is certain)
// with zero densification, filtered by column-at-a-time predicate programs
// (expr.CompileVec) that mark survivors in a selection vector instead of
// copying them, and projected by column permutation and vectorized
// per-column evaluation. Over a dense table — or with Options.RowBatches —
// batches are row batches of core.Tuple and take the per-row kernels:
// selection rewrites only the multiplicity triple, scans emit views into
// base-table storage, and buffers are reused batch to batch. LIMIT keeps
// O(n) state instead of merging the whole input, and LIMIT over ORDER BY
// fuses into a bounded top-k heap instead of a full sort. With Workers > 1, streaming chains
// over a scan are partitioned into contiguous ranges that run on worker
// goroutines and re-merge in partition order (the exchange operator), so
// parallelism never changes results.
//
// Operators whose semantics need the whole input — the hybrid overlap
// join's build sides, aggregation group-boxing, Diff, Distinct, and full
// ORDER BY — are pipeline breakers: they drain their inputs and run the
// exact internal/core kernels the reference executor runs, so every result
// is bit-identical to core.Exec (property-tested across engines, worker
// counts and batch sizes). Merge points are the one subtlety: the
// reference executor merges value-equivalent tuples at Project and Union.
// With compression off, every operator is insensitive to merge granularity
// and the pipeline streams through them, restoring the canonical form at
// the final merge; with JoinCompression/AggCompression on, equi-depth
// bucket boundaries make merge granularity observable, so the compiler
// demotes Project and Union to breakers and stays exact.
package phys

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/opt"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
)

// Mode selects the physical execution strategy.
type Mode int

const (
	// Pipelined streams through batch iterators, materializing only at
	// pipeline breakers. The default.
	Pipelined Mode = iota
	// Materialized lowers every operator as a breaker: operator-at-a-time
	// evaluation through the same kernels, the instrumented equivalent of
	// the reference executor (core.Exec).
	Materialized
)

// String names the mode ("pipelined", "materialized").
func (m Mode) String() string {
	if m == Materialized {
		return "materialized"
	}
	return "pipelined"
}

// DefaultBatchSize is the pipeline batch size when Options.BatchSize is 0.
const DefaultBatchSize = 1024

// minPartitionRows is the minimum scan rows per partition before a
// streaming chain is parallelized (below it, goroutine and channel
// overhead dominates — the streaming analog of core's chunking minimum).
const minPartitionRows = 1024

// Options configure compilation and execution of a physical plan.
type Options struct {
	// Mode is the execution strategy (Pipelined by default).
	Mode Mode
	// BatchSize is the number of tuples per pipeline batch; 0 means
	// DefaultBatchSize. Results are identical for every batch size.
	BatchSize int
	// RowBatches forces the legacy row-at-a-time batch representation:
	// scans densify sparse tables per batch and every operator takes its
	// per-row kernel. Results are identical either way; the flag exists
	// for A/B benchmarking and debugging of the columnar path.
	RowBatches bool
	// Exec carries the operator options of the core kernels: worker
	// count, compression, naive join.
	Exec core.Options
	// Analyze instruments every operator with rows/batches/time counters
	// (EXPLAIN ANALYZE); retrieve them with Plan.Stats after Execute.
	Analyze bool
	// Est carries the cost model's per-operator annotations for THIS plan
	// (opt.CostOptimize keys them by node identity). The lowering uses
	// them to pick hash-join build sides, pre-size hash tables,
	// aggregation maps and drain buffers, and size exchange partitions
	// from estimated rather than actual scan counts; estimates never
	// affect results. Nil disables stats-driven lowering.
	Est *opt.Annotations
}

// Plan is a compiled physical plan. A Plan executes once: compile per
// execution (compilation is a cheap tree lowering).
type Plan struct {
	root     iter
	sch      schema.Schema
	opt      Options
	stats    *metrics.ExecStats
	executed bool
}

// Compile lowers a logical plan into a physical iterator tree over the
// given database snapshot.
func Compile(n ra.Node, db core.DB, opt Options) (*Plan, error) {
	if ra.IsNil(n) {
		return nil, fmt.Errorf("phys: nil plan")
	}
	if opt.BatchSize <= 0 {
		opt.BatchSize = DefaultBatchSize
	}
	workers := opt.Exec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &compiler{
		db:      db,
		cat:     ra.CatalogMap(db.Schemas()),
		opt:     opt,
		workers: workers,
	}
	sch, err := ra.InferSchema(n, c.cat)
	if err != nil {
		return nil, err
	}
	root, err := c.lower(n)
	if err != nil {
		return nil, err
	}
	p := &Plan{root: root, sch: sch, opt: opt}
	if opt.Analyze {
		p.stats = &metrics.ExecStats{Mode: opt.Mode.String(), BatchSize: opt.BatchSize}
		if si, ok := root.(*statIter); ok {
			p.stats.Root = si.st
		}
	}
	return p, nil
}

// Execute opens the iterator tree, drains the root into a fresh relation
// and merges value-equivalent tuples — the same canonical form core.Exec
// returns. Cancelling ctx aborts execution promptly with ctx.Err().
func (p *Plan) Execute(ctx context.Context) (*core.Relation, error) {
	if p.executed {
		return nil, fmt.Errorf("phys: plan already executed (compile one plan per execution)")
	}
	p.executed = true
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	out, err := p.drainRoot(ctx)
	if err != nil {
		return nil, err
	}
	res, err := out.MergeCtx(ctx)
	if err != nil {
		return nil, err
	}
	if p.stats != nil {
		p.stats.Total = time.Since(start)
	}
	return res, nil
}

// drainRoot materializes the root iterator's output. A breaker root
// already owns a materialized relation, so take it directly instead of
// re-copying it batch by batch (the final merge still runs in place). The
// instrumented path keeps the generic drain so the root's rows/batches
// counters stay meaningful.
func (p *Plan) drainRoot(ctx context.Context) (*core.Relation, error) {
	if k, ok := p.root.(*kernelIter); ok && p.stats == nil {
		if err := k.Open(ctx); err != nil {
			k.Close()
			return nil, err
		}
		rel := k.rel
		if err := k.Close(); err != nil {
			return nil, err
		}
		return rel, nil
	}
	return drain(ctx, p.root)
}

// Stats returns the EXPLAIN ANALYZE counters (nil unless compiled with
// Options.Analyze; complete after Execute returns).
func (p *Plan) Stats() *metrics.ExecStats { return p.stats }

// Exec is the convenience one-shot: compile and execute.
func Exec(ctx context.Context, n ra.Node, db core.DB, opt Options) (*core.Relation, error) {
	p, err := Compile(n, db, opt)
	if err != nil {
		return nil, err
	}
	return p.Execute(ctx)
}

// ------------------------------------------------------------ lowering --

type compiler struct {
	db      core.DB
	cat     ra.Catalog
	opt     Options
	workers int
}

// streaming reports whether streaming lowering is active at all.
func (c *compiler) streaming() bool { return c.opt.Mode == Pipelined }

// projectStreams reports whether Project/Union may stream: they are the
// reference executor's merge points, and compression (equi-depth bucket
// boundaries count tuples) makes merge granularity observable.
func (c *compiler) projectStreams() bool {
	return c.streaming() && !c.opt.Exec.Compressed()
}

// estRows returns the cost model's row estimate for a node of this plan.
func (c *compiler) estRows(n ra.Node) (int64, bool) {
	if c.opt.Est == nil {
		return 0, false
	}
	return c.opt.Est.EstRows(n)
}

// maxPrealloc caps estimate-driven pre-allocations (tuples or map
// buckets): the estimator deliberately over-estimates uncertain
// predicates, so a hint must never reserve memory the input cannot
// fill. Pre-sizing saturates quickly — beyond 64Ki entries append
// doubling costs only a handful of reallocations — so the cap is kept
// small (a few MB of Tuple headers at worst). Growth beyond it falls
// back to append/rehash.
const maxPrealloc = 1 << 16

// sizeHint converts a node's row estimate into a bounded allocation hint
// (0 when no estimate is available).
func (c *compiler) sizeHint(n ra.Node) int {
	e, ok := c.estRows(n)
	if !ok || e < 0 {
		return 0
	}
	if e > maxPrealloc {
		return maxPrealloc
	}
	return int(e)
}

// lower builds the iterator for n. Streaming chains are parallelized by
// lowerExchange at the topmost chain node, which instantiates the whole
// chain per partition (buildChain) — the nodes below it are never lowered
// individually, so a chain is partitioned at most once (an inner node's
// own lowerExchange attempt can only arise when the top attempt failed,
// and then fails for the same reason).
func (c *compiler) lower(n ra.Node) (iter, error) {
	if ra.IsNil(n) {
		return nil, fmt.Errorf("phys: nil plan node")
	}
	switch t := n.(type) {
	case *ra.Scan:
		rel, ok := c.db.LookupFold(t.Table)
		if !ok {
			return nil, schema.UnknownTable("phys", t.Table, c.db.Names())
		}
		it := newScanIter(rel, 0, rel.Len(), c.opt.BatchSize, c.opt.RowBatches)
		return c.wrap(it, n, t.String(), "stream"), nil

	case *ra.Select:
		if !c.streaming() {
			return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
				return core.ApplySelect(ctx, ins[0], t.Pred, c.opt.Exec)
			}, t.Child)
		}
		if ex, ok, err := c.lowerExchange(n); err != nil || ok {
			return ex, err
		}
		child, err := c.lower(t.Child)
		if err != nil {
			return nil, err
		}
		it := &selectIter{child: child, pred: t.Pred, sch: child.Schema()}
		return c.wrap(it, n, t.String(), "stream", child), nil

	case *ra.Project:
		if !c.projectStreams() {
			return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
				return core.ApplyProject(ctx, ins[0], t.Cols, c.opt.Exec)
			}, t.Child)
		}
		if ex, ok, err := c.lowerExchange(n); err != nil || ok {
			return ex, err
		}
		child, err := c.lower(t.Child)
		if err != nil {
			return nil, err
		}
		sch, err := ra.InferSchema(t, c.cat)
		if err != nil {
			return nil, err
		}
		it := &projectIter{child: child, cols: t.Cols, sch: sch}
		return c.wrap(it, n, t.String(), "stream", child), nil

	case *ra.Union:
		if !c.projectStreams() {
			return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
				return core.UnionRelations(ctx, ins[0], ins[1])
			}, t.Left, t.Right)
		}
		// InferSchema validated the arity match at Compile.
		left, err := c.lower(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := c.lower(t.Right)
		if err != nil {
			return nil, err
		}
		it := &unionIter{left: left, right: right, sch: left.Schema()}
		return c.wrap(it, n, t.String(), "stream", left, right), nil

	case *ra.Join:
		// Stats-driven lowering: build the hash index over the estimated
		// smaller input (the index itself is sized from the materialized
		// build side, which is exact by then). The per-operator options
		// copy never leaks into other operators.
		o := c.opt.Exec
		if c.opt.Est != nil {
			o.JoinBuildLeft = c.opt.Est.BuildLeft(t)
		}
		return c.breaker(n, "join", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
			return core.JoinRelations(ctx, ins[0], ins[1], t.Cond, o)
		}, t.Left, t.Right)

	case *ra.Diff:
		return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
			return core.DiffRelations(ctx, ins[0], ins[1])
		}, t.Left, t.Right)

	case *ra.Distinct:
		return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
			return core.DistinctRelation(ctx, ins[0], c.opt.Exec)
		}, t.Child)

	case *ra.Agg:
		outSchema, err := ra.InferSchema(t, c.cat)
		if err != nil {
			return nil, err
		}
		// The estimated group count pre-sizes the aggregation maps.
		o := c.opt.Exec
		o.SizeHint = c.sizeHint(n)
		return c.breaker(n, "aggregation input", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
			return core.AggRelations(ctx, ins[0], t.GroupBy, t.Aggs, outSchema, o)
		}, t.Child)

	case *ra.OrderBy:
		// A full sort is always a breaker; the drained input is owned, so
		// the kernel sorts it in place.
		return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
			return core.ApplyOrderBy(ctx, ins[0], t.Keys, t.Desc)
		}, t.Child)

	case *ra.Limit:
		if !c.streaming() {
			return c.breaker(n, "", func(ctx context.Context, ins []*core.Relation) (*core.Relation, error) {
				return core.ApplyLimit(ctx, ins[0], t.N)
			}, t.Child)
		}
		if ob, ok := t.Child.(*ra.OrderBy); ok {
			child, err := c.lower(ob.Child)
			if err != nil {
				return nil, err
			}
			it := &topkIter{
				child: child, keys: ob.Keys, desc: ob.Desc, n: t.N,
				sch: child.Schema(), batch: c.opt.BatchSize,
			}
			label := fmt.Sprintf("%s over %s", t.String(), ob.String())
			return c.wrap(it, n, label, "top-k", child), nil
		}
		child, err := c.lower(t.Child)
		if err != nil {
			return nil, err
		}
		it := &limitIter{child: child, n: t.N, sch: child.Schema(), batch: c.opt.BatchSize}
		return c.wrap(it, n, t.String(), "stream", child), nil
	}
	return nil, fmt.Errorf("phys: unknown node %T", n)
}

// breaker lowers n as a kernel-backed pipeline breaker over its children.
// label (optional) mirrors the reference executor's input-error context.
// Each child drain is pre-sized from the child's estimated cardinality.
func (c *compiler) breaker(n ra.Node, label string, run func(context.Context, []*core.Relation) (*core.Relation, error), children ...ra.Node) (iter, error) {
	its := make([]iter, len(children))
	labels := make([]string, len(children))
	hints := make([]int, len(children))
	for i, ch := range children {
		it, err := c.lower(ch)
		if err != nil {
			return nil, err
		}
		its[i] = it
		hints[i] = c.sizeHint(ch)
		switch {
		case label == "join" && i == 0:
			labels[i] = "join left input"
		case label == "join" && i == 1:
			labels[i] = "join right input"
		case label != "join":
			labels[i] = label
		}
	}
	sch, err := ra.InferSchema(n, c.cat)
	if err != nil {
		return nil, err
	}
	it := &kernelIter{children: its, labels: labels, hints: hints, sch: sch, batch: c.opt.BatchSize, run: run}
	return c.wrap(it, n, n.String(), "materialize", its...), nil
}

// lowerExchange parallelizes a streaming Select/Project chain over a scan:
// when the whole subtree streams down to one Scan and the table is large
// enough to split across workers, one copy of the chain is built per
// contiguous scan range and an exchange re-merges them in partition order.
// With cost-based annotations, the partition COUNT is sized from the
// planner's estimated scan rows instead of the actual count, so the
// parallelism decision is part of the (explainable, reproducible) plan
// rather than of the data the snapshot happens to hold; the spans
// themselves always cover the actual stored tuples.
func (c *compiler) lowerExchange(n ra.Node) (iter, bool, error) {
	if c.workers <= 1 {
		return nil, false, nil
	}
	scan := c.chainScan(n)
	if scan == nil {
		return nil, false, nil
	}
	rel, ok := c.db.LookupFold(scan.Table)
	if !ok {
		return nil, false, schema.UnknownTable("phys", scan.Table, c.db.Names())
	}
	sized := rel.Len()
	if e, ok := c.estRows(scan); ok && e >= 0 && e <= int64(1<<40) {
		sized = int(e)
	}
	nPart := len(core.ChunkSpans(sized, c.workers, minPartitionRows))
	if nPart < 2 {
		return nil, false, nil
	}
	spans := core.ChunkSpans(rel.Len(), nPart, 1)
	if len(spans) < 2 {
		return nil, false, nil
	}
	parts := make([]iter, len(spans))
	for i, s := range spans {
		it, err := c.buildChain(n, rel, s.Lo, s.Hi)
		if err != nil {
			return nil, false, err
		}
		parts[i] = it
	}
	sch, err := ra.InferSchema(n, c.cat)
	if err != nil {
		return nil, false, err
	}
	it := &exchangeIter{parts: parts, sch: sch}
	return c.wrap(it, n, n.String(), fmt.Sprintf("exchange(%d)", len(parts))), true, nil
}

// chainScan returns the Scan leaf when every node from n down is a
// streamable Select/Project, and nil otherwise.
func (c *compiler) chainScan(n ra.Node) *ra.Scan {
	for {
		switch t := n.(type) {
		case *ra.Scan:
			return t
		case *ra.Select:
			n = t.Child
		case *ra.Project:
			if !c.projectStreams() {
				return nil
			}
			n = t.Child
		default:
			return nil
		}
	}
}

// buildChain instantiates the streaming chain over one scan partition.
func (c *compiler) buildChain(n ra.Node, rel *core.Relation, lo, hi int) (iter, error) {
	switch t := n.(type) {
	case *ra.Scan:
		return newScanIter(rel, lo, hi, c.opt.BatchSize, c.opt.RowBatches), nil
	case *ra.Select:
		child, err := c.buildChain(t.Child, rel, lo, hi)
		if err != nil {
			return nil, err
		}
		return &selectIter{child: child, pred: t.Pred, sch: child.Schema()}, nil
	case *ra.Project:
		child, err := c.buildChain(t.Child, rel, lo, hi)
		if err != nil {
			return nil, err
		}
		sch, err := ra.InferSchema(t, c.cat)
		if err != nil {
			return nil, err
		}
		return &projectIter{child: child, cols: t.Cols, sch: sch}, nil
	}
	return nil, fmt.Errorf("phys: non-streaming node %T in scan chain", n)
}

// wrap instruments an iterator when Analyze is on, linking the children's
// counters into the stats tree and attaching the cost model's estimate
// for the lowered node so EXPLAIN ANALYZE shows est next to actual.
func (c *compiler) wrap(it iter, n ra.Node, op, strategy string, children ...iter) iter {
	if !c.opt.Analyze {
		return it
	}
	st := &metrics.OpStats{Op: op, Strategy: strategy}
	if e, ok := c.estRows(n); ok {
		st.EstRows, st.HasEst = e, true
	}
	for _, ch := range children {
		if si, ok := ch.(*statIter); ok {
			st.Children = append(st.Children, si.st)
		}
	}
	return &statIter{inner: it, st: st}
}
