package phys

import (
	"context"
	"fmt"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/phys/vec"
	"github.com/audb/audb/internal/schema"
)

// kernelIter is a pipeline breaker: it drains its children into
// materialized relations at Open, runs one of internal/core's operator
// kernels — bit-identical to the reference executor by construction — and
// streams the kernel's output in batches. The children still stream into
// the drain, so a breaker materializes exactly one relation per input, not
// the whole subtree.
type kernelIter struct {
	children []iter
	// labels optionally wraps a child's drain error with the same context
	// the reference executor attaches (e.g. "join left input").
	labels []string
	// hints holds the planner's estimated rows per child (0 = none),
	// pre-sizing each drain's output slice.
	hints []int
	sch   schema.Schema
	batch int
	run   func(ctx context.Context, ins []*core.Relation) (*core.Relation, error)

	// rel is the kernel's materialized output (owned); Next streams its
	// tuples, and Plan.Execute takes it directly when the breaker is the
	// plan root.
	rel *core.Relation
	pos int
	out vec.Batch
}

func (k *kernelIter) Open(ctx context.Context) error {
	ins := make([]*core.Relation, len(k.children))
	for i, ch := range k.children {
		hint := 0
		if k.hints != nil {
			hint = k.hints[i]
		}
		rel, err := drainHint(ctx, ch, hint)
		if err != nil {
			if k.labels != nil && k.labels[i] != "" {
				return fmt.Errorf("phys: %s: %w", k.labels[i], err)
			}
			return err
		}
		ins[i] = rel
	}
	res, err := k.run(ctx, ins)
	if err != nil {
		return err
	}
	k.rel = res
	k.pos = 0
	return nil
}

func (k *kernelIter) Next() (*vec.Batch, error) {
	if k.rel == nil || k.pos >= len(k.rel.Tuples) {
		return nil, nil
	}
	end := k.pos + k.batch
	if end > len(k.rel.Tuples) {
		end = len(k.rel.Tuples)
	}
	k.out.SetRows(k.rel.Tuples[k.pos:end])
	k.pos = end
	return &k.out, nil
}

func (k *kernelIter) Close() error {
	// Children are opened and closed inside Open's drain; closing them
	// again must be safe per the iter contract.
	var err error
	for _, ch := range k.children {
		if cerr := ch.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (k *kernelIter) Schema() schema.Schema { return k.sch }

// drain opens the child, appends every batch into a fresh relation the
// caller owns (batch buffers are reused by producers; row batches copy the
// Tuple structs, columnar batches are gathered into fresh tuples), and
// closes the child.
func drain(ctx context.Context, it iter) (*core.Relation, error) {
	return drainHint(ctx, it, 0)
}

// drainHint is drain with the output slice pre-sized to the planner's
// estimate (already capped by the compiler; 0 means no estimate). An
// under-estimate just grows the slice as before.
func drainHint(ctx context.Context, it iter, hint int) (*core.Relation, error) {
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, err
	}
	out := core.New(it.Schema())
	if hint > 0 {
		out.Tuples = make([]core.Tuple, 0, hint)
	}
	for {
		b, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		out.Tuples = b.AppendTuples(out.Tuples)
	}
	return out, it.Close()
}
