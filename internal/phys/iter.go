package phys

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// iter is a pull-based batch iterator (a volcano-style operator working on
// batches of AU-tuples instead of single rows).
//
// Contract:
//
//   - Open binds the iterator to the query context; Next observes the same
//     context (cooperatively, at ctxpoll stride).
//   - Next returns the next non-empty batch, or nil when the input is
//     exhausted. The returned slice is valid only until the next Next or
//     Close call — streaming operators reuse their output buffer, and scans
//     return views into base-table storage. Consumers that retain tuples
//     must copy them (appending the Tuple structs to a slice is a copy;
//     attribute ranges are immutable and may stay shared).
//   - Close releases resources and is safe to call more than once and
//     after a failed Open.
type iter interface {
	Open(ctx context.Context) error
	Next() ([]core.Tuple, error)
	Close() error
	Schema() schema.Schema
}

// ---------------------------------------------------------------- scan --

// scanIter streams the tuples of a base relation in fixed-size batches.
// Over a dense relation batches are subslices of the stored tuples (a scan
// never copies); over a sparse relation each batch is a fresh dense
// materialization of its row range, which trivially satisfies the iter
// retention contract. Either way a partitioned scan ([lo, hi) ranges of
// one relation) feeds the exchange operator without any coordination.
type scanIter struct {
	rel    *core.Relation
	sch    schema.Schema
	lo, hi int
	batch  int

	ctx context.Context
	pos int
}

func newScanIter(rel *core.Relation, lo, hi, batch int) *scanIter {
	return &scanIter{rel: rel, sch: rel.Schema, lo: lo, hi: hi, batch: batch}
}

func (s *scanIter) Open(ctx context.Context) error {
	s.ctx = ctx
	s.pos = s.lo
	return ctx.Err()
}

func (s *scanIter) Next() ([]core.Tuple, error) {
	if s.pos >= s.hi {
		return nil, nil
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	end := s.pos + s.batch
	if end > s.hi {
		end = s.hi
	}
	out := s.rel.DenseRange(s.pos, end)
	s.pos = end
	return out, nil
}

func (s *scanIter) Close() error          { return nil }
func (s *scanIter) Schema() schema.Schema { return s.sch }

// ------------------------------------------------ fused certain select --

// certSelectIter fuses σ over a scan of a FastCertain base relation: the
// predicate is evaluated deterministically over the flat column values and
// range triples are materialized only for the rows it keeps, so filtered
// rows never exist as triples at all. It is gated on the same conditions
// as the materializing kernel's certain-only loop (core.Relation.
// FastCertain plus expr.CertainFastSafe), under which FilterTuple
// multiplies the row annotation by [1/1/1] for a certainly-true predicate
// and drops everything else — batch-for-batch identical to
// scanIter+selectIter.
type certSelectIter struct {
	rel    *core.Relation
	pred   expr.Expr
	sch    schema.Schema
	lo, hi int
	batch  int

	poll *ctxpoll.Poll
	flat [][]types.Value
	det  types.Tuple
	keep []int
	buf  []core.Tuple
	pos  int
}

func newCertSelectIter(rel *core.Relation, pred expr.Expr, lo, hi, batch int) *certSelectIter {
	return &certSelectIter{rel: rel, pred: pred, sch: rel.Schema, lo: lo, hi: hi, batch: batch}
}

func (s *certSelectIter) Open(ctx context.Context) error {
	s.poll = ctxpoll.New(ctx)
	arity := s.sch.Arity()
	s.flat = make([][]types.Value, arity)
	for c := range s.flat {
		s.flat[c] = s.rel.FlatCol(c)
	}
	s.det = make(types.Tuple, arity)
	s.pos = s.lo
	return ctx.Err()
}

func (s *certSelectIter) Next() ([]core.Tuple, error) {
	arity := len(s.det)
	for s.pos < s.hi {
		end := s.pos + s.batch
		if end > s.hi {
			end = s.hi
		}
		s.keep = s.keep[:0]
		for i := s.pos; i < end; i++ {
			if err := s.poll.Due(); err != nil {
				return nil, err
			}
			for c := range s.flat {
				s.det[c] = s.flat[c][i]
			}
			v, err := s.pred.Eval(s.det)
			if err != nil {
				return nil, fmt.Errorf("core: selection: %w", err)
			}
			if v.Kind() == types.KindBool && v.AsBool() {
				s.keep = append(s.keep, i)
			}
		}
		s.pos = end
		if len(s.keep) == 0 {
			continue
		}
		// The Vals arena is fresh per batch: consumers may retain the
		// Tuple structs, and emitted attribute ranges must stay immutable.
		s.buf = s.buf[:0]
		arena := make(rangeval.Tuple, len(s.keep)*arity)
		for _, i := range s.keep {
			vals := arena[:arity:arity]
			arena = arena[arity:]
			for c := range s.flat {
				vals[c] = rangeval.Certain(s.flat[c][i])
			}
			s.buf = append(s.buf, core.Tuple{Vals: vals, M: s.rel.MultAt(i)})
		}
		return s.buf, nil
	}
	return nil, nil
}

func (s *certSelectIter) Close() error          { return nil }
func (s *certSelectIter) Schema() schema.Schema { return s.sch }

// -------------------------------------------------------------- select --

// selectIter applies σ per batch, reusing one output buffer: steady-state
// selection allocates nothing and never clones tuples (FilterTuple only
// rewrites the multiplicity triple, which lives in the Tuple struct).
type selectIter struct {
	child iter
	pred  expr.Expr
	sch   schema.Schema

	poll *ctxpoll.Poll
	buf  []core.Tuple
}

func (s *selectIter) Open(ctx context.Context) error {
	s.poll = ctxpoll.New(ctx)
	return s.child.Open(ctx)
}

func (s *selectIter) Next() ([]core.Tuple, error) {
	for {
		b, err := s.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		s.buf = s.buf[:0]
		for _, t := range b {
			if err := s.poll.Due(); err != nil {
				return nil, err
			}
			ot, keep, err := core.FilterTuple(t, s.pred)
			if err != nil {
				return nil, err
			}
			if keep {
				s.buf = append(s.buf, ot)
			}
		}
		if len(s.buf) > 0 {
			return s.buf, nil
		}
	}
}

func (s *selectIter) Close() error          { return s.child.Close() }
func (s *selectIter) Schema() schema.Schema { return s.sch }

// ------------------------------------------------------------- project --

// projectIter evaluates generalized projection per batch into a reused
// buffer. Unlike the materializing kernel it does not merge value-
// equivalent outputs — with compression off, every operator above is
// insensitive to merge granularity and the final merge restores the
// canonical form, so results stay bit-identical (the compiler materializes
// Project whenever compression makes merge granularity observable).
type projectIter struct {
	child iter
	cols  []ra.ProjCol
	sch   schema.Schema

	poll *ctxpoll.Poll
	buf  []core.Tuple
}

func (p *projectIter) Open(ctx context.Context) error {
	p.poll = ctxpoll.New(ctx)
	return p.child.Open(ctx)
}

func (p *projectIter) Next() ([]core.Tuple, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	p.buf = p.buf[:0]
	for _, t := range b {
		if err := p.poll.Due(); err != nil {
			return nil, err
		}
		ot, err := core.ProjectTuple(t, p.cols)
		if err != nil {
			return nil, err
		}
		p.buf = append(p.buf, ot)
	}
	return p.buf, nil
}

func (p *projectIter) Close() error          { return p.child.Close() }
func (p *projectIter) Schema() schema.Schema { return p.sch }

// --------------------------------------------------------------- union --

// unionIter concatenates two streams (bag union adds annotations; the
// summing of value-equivalent tuples happens at the next merge point, as
// for projectIter).
type unionIter struct {
	left, right iter
	sch         schema.Schema
	onRight     bool
}

func (u *unionIter) Open(ctx context.Context) error {
	u.onRight = false
	if err := u.left.Open(ctx); err != nil {
		return err
	}
	return u.right.Open(ctx)
}

func (u *unionIter) Next() ([]core.Tuple, error) {
	if !u.onRight {
		b, err := u.left.Next()
		if err != nil || b != nil {
			return b, err
		}
		u.onRight = true
	}
	return u.right.Next()
}

func (u *unionIter) Close() error {
	err := u.left.Close()
	if rerr := u.right.Close(); err == nil {
		err = rerr
	}
	return err
}
func (u *unionIter) Schema() schema.Schema { return u.sch }

// --------------------------------------------------------------- limit --

// limitIter is the streaming LIMIT: it emits the first n merged rows with
// O(n) state instead of materializing and merging the whole input. Tuples
// value-equivalent to a kept row keep folding their annotations in (LIMIT
// applies to merged rows, so the whole input is consumed — bit-identical to
// merge-then-truncate), while tuples introducing a new value beyond the
// first n are discarded immediately: they can never enter the result.
type limitIter struct {
	child iter
	n     int
	sch   schema.Schema
	batch int

	poll    *ctxpoll.Poll
	rows    []core.Tuple
	idx     map[string]int
	scratch []byte
	done    bool
	pos     int
}

func (l *limitIter) Open(ctx context.Context) error {
	l.poll = ctxpoll.New(ctx)
	// Cap the size hint: n is user-controlled (LIMIT 2e9 must not
	// pre-allocate gigabytes of map buckets for a tiny input) and the map
	// grows on demand anyway.
	hint := l.n
	if hint < 0 {
		hint = 0
	}
	if hint > l.batch {
		hint = l.batch
	}
	l.idx = make(map[string]int, hint)
	return l.child.Open(ctx)
}

func (l *limitIter) Next() ([]core.Tuple, error) {
	if !l.done {
		for {
			b, err := l.child.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			for _, t := range b {
				if err := l.poll.Due(); err != nil {
					return nil, err
				}
				// Probe with the scratch buffer (no allocation); the key
				// string is only materialized for rows actually kept.
				l.scratch = t.Vals.AppendKey(l.scratch[:0])
				if j, ok := l.idx[string(l.scratch)]; ok {
					l.rows[j].M = l.rows[j].M.Add(t.M)
					continue
				}
				if len(l.rows) < l.n {
					l.idx[string(l.scratch)] = len(l.rows)
					l.rows = append(l.rows, t)
				}
			}
		}
		l.done = true
		l.idx = nil
	}
	if l.pos >= len(l.rows) {
		return nil, nil
	}
	end := l.pos + l.batch
	if end > len(l.rows) {
		end = len(l.rows)
	}
	out := l.rows[l.pos:end]
	l.pos = end
	return out, nil
}

func (l *limitIter) Close() error          { return l.child.Close() }
func (l *limitIter) Schema() schema.Schema { return l.sch }

// --------------------------------------------------------------- top-k --

// topkIter fuses LIMIT n over ORDER BY into a bounded selection: instead of
// sorting and merging the full input it keeps at most n candidate merged
// rows in a max-heap ordered by (sort key, first-occurrence position) — the
// exact order merged rows take in the stable-sorted stream, since value-
// equivalent tuples share their sort key and the merged row sits at its
// first occurrence. A new value that orders after the current n-th
// candidate can never enter the result (candidate ranks only worsen as the
// stream continues) and is discarded with O(1) work; duplicates of kept
// candidates keep folding their annotations. Peak memory is O(n), not
// O(input), and the result is bit-identical to sort + merge + truncate.
type topkIter struct {
	child iter
	keys  []int
	desc  bool
	n     int
	sch   schema.Schema
	batch int

	poll    *ctxpoll.Poll
	h       topkHeap
	idx     map[string]*topkEntry
	scratch []byte
	out     []core.Tuple
	done    bool
	pos     int
}

// topkEntry is one candidate merged row.
type topkEntry struct {
	tup core.Tuple
	key string
	seq int // first-occurrence position in the input stream
}

// topkHeap is a max-heap over the output order: the root is the candidate
// that orders last, i.e. the one evicted when a better row arrives.
type topkHeap struct {
	es   []*topkEntry
	keys []int
	desc bool
}

// after reports whether a orders after b in the final output.
func (h *topkHeap) after(a, b *topkEntry) bool {
	if c := core.OrderCompare(a.tup.Vals, b.tup.Vals, h.keys, h.desc); c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

func (h *topkHeap) Len() int           { return len(h.es) }
func (h *topkHeap) Less(i, j int) bool { return h.after(h.es[i], h.es[j]) }
func (h *topkHeap) Swap(i, j int)      { h.es[i], h.es[j] = h.es[j], h.es[i] }
func (h *topkHeap) Push(x any)         { h.es = append(h.es, x.(*topkEntry)) }
func (h *topkHeap) Pop() any {
	e := h.es[len(h.es)-1]
	h.es = h.es[:len(h.es)-1]
	return e
}

func (t *topkIter) Open(ctx context.Context) error {
	t.poll = ctxpoll.New(ctx)
	t.h = topkHeap{keys: t.keys, desc: t.desc}
	t.idx = make(map[string]*topkEntry)
	return t.child.Open(ctx)
}

func (t *topkIter) Next() ([]core.Tuple, error) {
	if !t.done {
		if err := t.consume(); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.out) {
		return nil, nil
	}
	end := t.pos + t.batch
	if end > len(t.out) {
		end = len(t.out)
	}
	out := t.out[t.pos:end]
	t.pos = end
	return out, nil
}

func (t *topkIter) consume() error {
	seq := 0
	for {
		b, err := t.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, tup := range b {
			if err := t.poll.Due(); err != nil {
				return err
			}
			i := seq
			seq++
			// Probe with the scratch buffer (no allocation); keys and
			// entries are only materialized for kept candidates, so a
			// discarded tuple costs O(1) with zero allocations.
			t.scratch = tup.Vals.AppendKey(t.scratch[:0])
			if e, ok := t.idx[string(t.scratch)]; ok {
				e.tup.M = e.tup.M.Add(tup.M)
				continue
			}
			if t.n <= 0 {
				continue
			}
			if len(t.h.es) >= t.n {
				worst := t.h.es[0]
				if c := core.OrderCompare(worst.tup.Vals, tup.Vals, t.keys, t.desc); c < 0 || (c == 0 && worst.seq < i) {
					// The new value orders at or after every kept
					// candidate and, since ranks only worsen, can never
					// enter the first n merged rows: discard.
					continue
				}
				heap.Pop(&t.h)
				delete(t.idx, worst.key)
			}
			e := &topkEntry{tup: tup, key: string(t.scratch), seq: i}
			heap.Push(&t.h, e)
			t.idx[e.key] = e
		}
	}
	es := t.h.es
	sort.Slice(es, func(i, j int) bool { return t.h.after(es[j], es[i]) })
	t.out = make([]core.Tuple, len(es))
	for i, e := range es {
		t.out[i] = e.tup
	}
	t.done = true
	t.h.es, t.idx = nil, nil
	return nil
}

func (t *topkIter) Close() error          { return t.child.Close() }
func (t *topkIter) Schema() schema.Schema { return t.sch }
