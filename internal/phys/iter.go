package phys

import (
	"container/heap"
	"context"
	"sort"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/phys/vec"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// iter is a pull-based batch iterator (a volcano-style operator working on
// batches of AU-tuples instead of single rows).
//
// Contract:
//
//   - Open binds the iterator to the query context; Next observes the same
//     context (cooperatively, at ctxpoll stride — vectorized kernels poll
//     once per batch, per-row kernels per row).
//   - Next returns the next non-empty batch, or nil when the input is
//     exhausted. The returned batch is valid only until the next Next or
//     Close call — streaming operators reuse their output buffers and
//     selection vectors, and scans return views into base-table storage.
//     Consumers that retain rows must copy them (appending the Tuple
//     structs of a row batch is a copy; columnar rows are gathered via
//     vec.Batch.AppendTuples/AppendRow; attribute ranges are immutable
//     and may stay shared).
//   - Close releases resources and is safe to call more than once and
//     after a failed Open.
type iter interface {
	Open(ctx context.Context) error
	Next() (*vec.Batch, error)
	Close() error
	Schema() schema.Schema
}

// ---------------------------------------------------------------- scan --

// scanIter streams the rows of a base relation in fixed-size batches.
// Over a dense relation batches are row batches wrapping subslices of the
// stored tuples (a scan never copies); over a sparse relation batches are
// columnar views aliasing the stored rangeval.Col columns and
// multiplicity slices — zero densification, zero per-batch allocation.
// Either way a partitioned scan ([lo, hi) ranges of one relation) feeds
// the exchange operator without any coordination. With rowBatches set
// (Options.RowBatches), sparse rows are densified per batch instead — the
// legacy row-at-a-time representation kept for A/B comparison.
type scanIter struct {
	rel        *core.Relation
	sch        schema.Schema
	lo, hi     int
	batch      int
	rowBatches bool

	ctx    context.Context
	pos    int
	cols   []rangeval.Col
	mflat  []int64
	mdense []core.Mult
	out    vec.Batch
}

func newScanIter(rel *core.Relation, lo, hi, batch int, rowBatches bool) *scanIter {
	return &scanIter{rel: rel, sch: rel.Schema, lo: lo, hi: hi, batch: batch, rowBatches: rowBatches}
}

func (s *scanIter) Open(ctx context.Context) error {
	s.ctx = ctx
	s.pos = s.lo
	s.cols, s.mflat, s.mdense = nil, nil, nil
	if !s.rowBatches {
		s.cols, s.mflat, s.mdense, _ = s.rel.SparseView()
	}
	return ctx.Err()
}

func (s *scanIter) Next() (*vec.Batch, error) {
	if s.pos >= s.hi {
		return nil, nil
	}
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	end := s.pos + s.batch
	if end > s.hi {
		end = s.hi
	}
	if s.cols != nil {
		s.out.SetSparseSpan(s.cols, s.mflat, s.mdense, s.pos, end)
	} else {
		s.out.SetRows(s.rel.DenseRange(s.pos, end))
	}
	s.pos = end
	return &s.out, nil
}

func (s *scanIter) Close() error          { return nil }
func (s *scanIter) Schema() schema.Schema { return s.sch }

// -------------------------------------------------------------- select --

// selectIter applies σ per batch. Row batches take the per-row kernel
// into a reused output buffer: steady-state selection allocates nothing
// and never clones tuples (FilterTuple only rewrites the multiplicity
// triple, which lives in the Tuple struct). Columnar batches whose
// predicate compiles (expr.CompileVec) and whose referenced columns are
// flat and null-free are filtered by the column-at-a-time program, which
// only refines the selection vector — survivors are marked, never copied,
// and annotations pass through unchanged (a certainly-true predicate
// multiplies by the semiring one; everything else is dropped, exactly
// FilterTuple's certain-input behavior). Any other columnar batch — and
// any batch whose vectorized evaluation errors — is densified and re-run
// through the per-row kernel, which also surfaces the canonical row-order
// error.
type selectIter struct {
	child iter
	pred  expr.Expr
	sch   schema.Schema

	poll  *ctxpoll.Poll
	prog  *expr.Prog
	flat  [][]types.Value
	sel   []int
	buf   []core.Tuple
	dense []core.Tuple
	out   vec.Batch
}

func (s *selectIter) Open(ctx context.Context) error {
	s.poll = ctxpoll.New(ctx)
	s.prog, _ = expr.CompileVec(s.pred)
	return s.child.Open(ctx)
}

func (s *selectIter) Next() (*vec.Batch, error) {
	for {
		b, err := s.child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if !b.Columnar {
			if err := s.rowFilter(b.Rows); err != nil {
				return nil, err
			}
			if len(s.buf) > 0 {
				s.out.SetRows(s.buf)
				return &s.out, nil
			}
			continue
		}
		if err := s.poll.Due(); err != nil {
			return nil, err
		}
		if s.prog != nil && s.flatCols(b) {
			sel, err := s.prog.SelectInto(s.flat, b.N, b.Sel, s.sel[:0])
			if err == nil {
				s.sel = sel
				if len(sel) == 0 {
					continue
				}
				s.out = *b
				s.out.Sel = sel
				return &s.out, nil
			}
			// The vectorized pass failed somewhere in the batch;
			// fall through to the per-row kernel, which reproduces
			// the exact row-order error the reference executor reports.
		}
		s.dense = b.AppendTuples(s.dense[:0])
		if err := s.rowFilter(s.dense); err != nil {
			return nil, err
		}
		if len(s.buf) > 0 {
			s.out.SetRows(s.buf)
			return &s.out, nil
		}
	}
}

// flatCols gates the vectorized path on the batch at hand: every column
// the predicate references must be flat and null-free (the precondition
// under which deterministic evaluation is bit-identical to range
// evaluation), and binds those columns for the program.
func (s *selectIter) flatCols(b *vec.Batch) bool {
	if len(s.flat) < len(b.Cols) {
		s.flat = make([][]types.Value, len(b.Cols))
	}
	for _, a := range s.prog.Attrs() {
		if a < 0 || a >= len(b.Cols) {
			return false
		}
		c := b.Cols[a]
		if !c.IsFlat() || c.HasNulls() {
			return false
		}
		s.flat[a] = c.Flat
	}
	return true
}

// rowFilter runs the per-row selection kernel over rows into s.buf.
func (s *selectIter) rowFilter(rows []core.Tuple) error {
	s.buf = s.buf[:0]
	for _, t := range rows {
		if err := s.poll.Due(); err != nil {
			return err
		}
		ot, keep, err := core.FilterTuple(t, s.pred)
		if err != nil {
			return err
		}
		if keep {
			s.buf = append(s.buf, ot)
		}
	}
	return nil
}

func (s *selectIter) Close() error          { return s.child.Close() }
func (s *selectIter) Schema() schema.Schema { return s.sch }

// ------------------------------------------------------------- project --

// projectIter evaluates generalized projection per batch into reused
// buffers. Unlike the materializing kernel it does not merge value-
// equivalent outputs — with compression off, every operator above is
// insensitive to merge granularity and the final merge restores the
// canonical form, so results stay bit-identical (the compiler materializes
// Project whenever compression makes merge granularity observable).
//
// On a columnar batch, each output column takes the cheapest sound path:
// a bare attribute reference aliases the input column outright (a
// permutation costs nothing), an expression that compiles and reads only
// flat null-free columns is evaluated column-at-a-time into a reused flat
// buffer, and everything else evaluates per row into a reused dense
// buffer. The multiplicities and the selection vector pass through
// untouched. Any evaluation error re-runs the batch through the canonical
// per-row kernel, surfacing the exact row-order error.
type projectIter struct {
	child iter
	cols  []ra.ProjCol
	sch   schema.Schema

	poll *ctxpoll.Poll
	buf  []core.Tuple
	out  vec.Batch

	planned  bool
	alias    []int
	progs    []*expr.Prog
	flat     [][]types.Value
	flatOut  [][]types.Value
	denseOut [][]rangeval.V
	perRow   []int
	scratch  rangeval.Tuple
	dense    []core.Tuple
}

func (p *projectIter) Open(ctx context.Context) error {
	p.poll = ctxpoll.New(ctx)
	if !p.planned {
		p.planned = true
		p.alias = make([]int, len(p.cols))
		p.progs = make([]*expr.Prog, len(p.cols))
		p.flatOut = make([][]types.Value, len(p.cols))
		p.denseOut = make([][]rangeval.V, len(p.cols))
		for j, c := range p.cols {
			p.alias[j] = -1
			if a, ok := c.E.(expr.Attr); ok {
				p.alias[j] = a.Idx
				continue
			}
			p.progs[j], _ = expr.CompileVec(c.E)
		}
	}
	return p.child.Open(ctx)
}

func (p *projectIter) Next() (*vec.Batch, error) {
	b, err := p.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if !b.Columnar {
		if err := p.rowProject(b.Rows); err != nil {
			return nil, err
		}
		p.out.SetRows(p.buf)
		return &p.out, nil
	}
	if err := p.poll.Due(); err != nil {
		return nil, err
	}
	if err := p.columnar(b); err != nil {
		return nil, err
	}
	return &p.out, nil
}

// columnar projects one columnar batch into p.out, falling back to the
// canonical per-row kernel on any evaluation error.
func (p *projectIter) columnar(b *vec.Batch) error {
	p.out.Rows = nil
	p.out.Columnar = true
	if cap(p.out.Cols) < len(p.cols) {
		p.out.Cols = make([]rangeval.Col, len(p.cols))
	}
	p.out.Cols = p.out.Cols[:len(p.cols)]
	p.out.MFlat, p.out.MDense = b.MFlat, b.MDense
	p.out.N, p.out.Sel = b.N, b.Sel

	p.perRow = p.perRow[:0]
	for j := range p.cols {
		if a := p.alias[j]; a >= 0 && a < len(b.Cols) {
			p.out.Cols[j] = b.Cols[a]
			continue
		}
		if p.progs[j] != nil && p.flatCols(p.progs[j], b) {
			if len(p.flatOut[j]) < b.N {
				p.flatOut[j] = make([]types.Value, b.N)
			}
			out := p.flatOut[j][:b.N]
			if err := p.progs[j].EvalInto(p.flat, b.N, b.Sel, out); err != nil {
				return p.fallback(b)
			}
			p.out.Cols[j] = rangeval.ColFromFlat(out)
			continue
		}
		p.perRow = append(p.perRow, j)
	}
	if len(p.perRow) == 0 {
		return nil
	}
	for _, j := range p.perRow {
		if len(p.denseOut[j]) < b.N {
			p.denseOut[j] = make([]rangeval.V, b.N)
		}
	}
	evalRow := func(i int) error {
		if err := p.poll.Due(); err != nil {
			return err
		}
		p.scratch = b.AppendRow(p.scratch[:0], i)
		for _, j := range p.perRow {
			v, err := p.cols[j].E.EvalRange(p.scratch)
			if err != nil {
				return p.fallback(b)
			}
			p.denseOut[j][i] = v
		}
		return nil
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			if err := evalRow(i); err != nil {
				return err
			}
		}
	} else {
		for i := 0; i < b.N; i++ {
			if err := evalRow(i); err != nil {
				return err
			}
		}
	}
	for _, j := range p.perRow {
		p.out.Cols[j] = rangeval.ColFromDense(p.denseOut[j][:b.N])
	}
	return nil
}

// flatCols gates one program on the batch's columns, binding p.flat.
func (p *projectIter) flatCols(prog *expr.Prog, b *vec.Batch) bool {
	if len(p.flat) < len(b.Cols) {
		p.flat = make([][]types.Value, len(b.Cols))
	}
	for _, a := range prog.Attrs() {
		if a < 0 || a >= len(b.Cols) {
			return false
		}
		c := b.Cols[a]
		if !c.IsFlat() || c.HasNulls() {
			return false
		}
		p.flat[a] = c.Flat
	}
	return true
}

// fallback densifies the batch and re-runs the canonical per-row kernel,
// reproducing the exact error (and error message) the reference executor
// reports. It is only reached on evaluation errors, which abort the query.
func (p *projectIter) fallback(b *vec.Batch) error {
	p.dense = b.AppendTuples(p.dense[:0])
	if err := p.rowProject(p.dense); err != nil {
		return err
	}
	p.out.SetRows(p.buf)
	return nil
}

// rowProject runs the per-row projection kernel over rows into p.buf.
func (p *projectIter) rowProject(rows []core.Tuple) error {
	p.buf = p.buf[:0]
	for _, t := range rows {
		if err := p.poll.Due(); err != nil {
			return err
		}
		ot, err := core.ProjectTuple(t, p.cols)
		if err != nil {
			return err
		}
		p.buf = append(p.buf, ot)
	}
	return nil
}

func (p *projectIter) Close() error          { return p.child.Close() }
func (p *projectIter) Schema() schema.Schema { return p.sch }

// --------------------------------------------------------------- union --

// unionIter concatenates two streams (bag union adds annotations; the
// summing of value-equivalent tuples happens at the next merge point, as
// for projectIter). Batches of either representation pass through
// untouched.
type unionIter struct {
	left, right iter
	sch         schema.Schema
	onRight     bool
}

func (u *unionIter) Open(ctx context.Context) error {
	u.onRight = false
	if err := u.left.Open(ctx); err != nil {
		return err
	}
	return u.right.Open(ctx)
}

func (u *unionIter) Next() (*vec.Batch, error) {
	if !u.onRight {
		b, err := u.left.Next()
		if err != nil || b != nil {
			return b, err
		}
		u.onRight = true
	}
	return u.right.Next()
}

func (u *unionIter) Close() error {
	err := u.left.Close()
	if rerr := u.right.Close(); err == nil {
		err = rerr
	}
	return err
}
func (u *unionIter) Schema() schema.Schema { return u.sch }

// --------------------------------------------------------------- limit --

// limitIter is the streaming LIMIT: it emits the first n merged rows with
// O(n) state instead of materializing and merging the whole input. Tuples
// value-equivalent to a kept row keep folding their annotations in (LIMIT
// applies to merged rows, so the whole input is consumed — bit-identical to
// merge-then-truncate), while tuples introducing a new value beyond the
// first n are discarded immediately: they can never enter the result.
// Columnar batches are probed through batched per-row key building
// (vec.Batch.AppendRowKey, byte-identical to the dense encoding, so one
// probe map serves both representations) and only the ≤ n kept rows are
// ever gathered into tuples.
type limitIter struct {
	child iter
	n     int
	sch   schema.Schema
	batch int

	poll    *ctxpoll.Poll
	rows    []core.Tuple
	idx     map[string]int
	scratch []byte
	done    bool
	pos     int
	out     vec.Batch
}

func (l *limitIter) Open(ctx context.Context) error {
	l.poll = ctxpoll.New(ctx)
	// Cap the size hint: n is user-controlled (LIMIT 2e9 must not
	// pre-allocate gigabytes of map buckets for a tiny input) and the map
	// grows on demand anyway.
	hint := l.n
	if hint < 0 {
		hint = 0
	}
	if hint > l.batch {
		hint = l.batch
	}
	l.idx = make(map[string]int, hint)
	return l.child.Open(ctx)
}

func (l *limitIter) Next() (*vec.Batch, error) {
	if !l.done {
		for {
			b, err := l.child.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := l.consume(b); err != nil {
				return nil, err
			}
		}
		l.done = true
		l.idx = nil
	}
	if l.pos >= len(l.rows) {
		return nil, nil
	}
	end := l.pos + l.batch
	if end > len(l.rows) {
		end = len(l.rows)
	}
	l.out.SetRows(l.rows[l.pos:end])
	l.pos = end
	return &l.out, nil
}

// consume folds one batch into the first-n state.
func (l *limitIter) consume(b *vec.Batch) error {
	if !b.Columnar {
		for _, t := range b.Rows {
			if err := l.poll.Due(); err != nil {
				return err
			}
			// Probe with the scratch buffer (no allocation); the key
			// string is only materialized for rows actually kept.
			l.scratch = t.Vals.AppendKey(l.scratch[:0])
			if j, ok := l.idx[string(l.scratch)]; ok {
				l.rows[j].M = l.rows[j].M.Add(t.M)
				continue
			}
			if len(l.rows) < l.n {
				l.idx[string(l.scratch)] = len(l.rows)
				l.rows = append(l.rows, t)
			}
		}
		return nil
	}
	take := func(i int) error {
		if err := l.poll.Due(); err != nil {
			return err
		}
		l.scratch = b.AppendRowKey(l.scratch[:0], i)
		if j, ok := l.idx[string(l.scratch)]; ok {
			l.rows[j].M = l.rows[j].M.Add(b.MultAt(i))
			return nil
		}
		if len(l.rows) < l.n {
			l.idx[string(l.scratch)] = len(l.rows)
			// Gather-copy: the batch's columns are reused, kept rows
			// must own their values.
			vals := b.AppendRow(make(rangeval.Tuple, 0, len(b.Cols)), i)
			l.rows = append(l.rows, core.Tuple{Vals: vals, M: b.MultAt(i)})
		}
		return nil
	}
	if b.Sel != nil {
		for _, i := range b.Sel {
			if err := take(i); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < b.N; i++ {
		if err := take(i); err != nil {
			return err
		}
	}
	return nil
}

func (l *limitIter) Close() error          { return l.child.Close() }
func (l *limitIter) Schema() schema.Schema { return l.sch }

// --------------------------------------------------------------- top-k --

// topkIter fuses LIMIT n over ORDER BY into a bounded selection: instead of
// sorting and merging the full input it keeps at most n candidate merged
// rows in a max-heap ordered by (sort key, first-occurrence position) — the
// exact order merged rows take in the stable-sorted stream, since value-
// equivalent tuples share their sort key and the merged row sits at its
// first occurrence. A new value that orders after the current n-th
// candidate can never enter the result (candidate ranks only worsen as the
// stream continues) and is discarded with O(1) work; duplicates of kept
// candidates keep folding their annotations. Peak memory is O(n), not
// O(input), and the result is bit-identical to sort + merge + truncate.
// Columnar rows are gathered into a reused scratch for the rank check and
// copied only when actually kept.
type topkIter struct {
	child iter
	keys  []int
	desc  bool
	n     int
	sch   schema.Schema
	batch int

	poll    *ctxpoll.Poll
	h       topkHeap
	idx     map[string]*topkEntry
	scratch []byte
	row     rangeval.Tuple
	outRows []core.Tuple
	done    bool
	pos     int
	out     vec.Batch
}

// topkEntry is one candidate merged row.
type topkEntry struct {
	tup core.Tuple
	key string
	seq int // first-occurrence position in the input stream
}

// topkHeap is a max-heap over the output order: the root is the candidate
// that orders last, i.e. the one evicted when a better row arrives.
type topkHeap struct {
	es   []*topkEntry
	keys []int
	desc bool
}

// after reports whether a orders after b in the final output.
func (h *topkHeap) after(a, b *topkEntry) bool {
	if c := core.OrderCompare(a.tup.Vals, b.tup.Vals, h.keys, h.desc); c != 0 {
		return c > 0
	}
	return a.seq > b.seq
}

func (h *topkHeap) Len() int           { return len(h.es) }
func (h *topkHeap) Less(i, j int) bool { return h.after(h.es[i], h.es[j]) }
func (h *topkHeap) Swap(i, j int)      { h.es[i], h.es[j] = h.es[j], h.es[i] }
func (h *topkHeap) Push(x any)         { h.es = append(h.es, x.(*topkEntry)) }
func (h *topkHeap) Pop() any {
	e := h.es[len(h.es)-1]
	h.es = h.es[:len(h.es)-1]
	return e
}

func (t *topkIter) Open(ctx context.Context) error {
	t.poll = ctxpoll.New(ctx)
	t.h = topkHeap{keys: t.keys, desc: t.desc}
	t.idx = make(map[string]*topkEntry)
	return t.child.Open(ctx)
}

func (t *topkIter) Next() (*vec.Batch, error) {
	if !t.done {
		if err := t.consume(); err != nil {
			return nil, err
		}
	}
	if t.pos >= len(t.outRows) {
		return nil, nil
	}
	end := t.pos + t.batch
	if end > len(t.outRows) {
		end = len(t.outRows)
	}
	t.out.SetRows(t.outRows[t.pos:end])
	t.pos = end
	return &t.out, nil
}

func (t *topkIter) consume() error {
	seq := 0
	for {
		b, err := t.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if !b.Columnar {
			for _, tup := range b.Rows {
				if err := t.offer(tup, false, seq); err != nil {
					return err
				}
				seq++
			}
			continue
		}
		offer := func(i int) error {
			// Gather into the reused scratch row; offer copies it only
			// when the candidate is actually kept.
			t.row = b.AppendRow(t.row[:0], i)
			err := t.offer(core.Tuple{Vals: t.row, M: b.MultAt(i)}, true, seq)
			seq++
			return err
		}
		if b.Sel != nil {
			for _, i := range b.Sel {
				if err := offer(i); err != nil {
					return err
				}
			}
			continue
		}
		for i := 0; i < b.N; i++ {
			if err := offer(i); err != nil {
				return err
			}
		}
	}
	es := t.h.es
	sort.Slice(es, func(i, j int) bool { return t.h.after(es[j], es[i]) })
	t.outRows = make([]core.Tuple, len(es))
	for i, e := range es {
		t.outRows[i] = e.tup
	}
	t.done = true
	t.h.es, t.idx = nil, nil
	return nil
}

// offer folds one row into the top-k state. When copyVals is set the
// tuple's Vals is a reused scratch and must be copied if kept.
func (t *topkIter) offer(tup core.Tuple, copyVals bool, i int) error {
	if err := t.poll.Due(); err != nil {
		return err
	}
	// Probe with the scratch buffer (no allocation); keys and entries are
	// only materialized for kept candidates, so a discarded tuple costs
	// O(1) with zero allocations.
	t.scratch = tup.Vals.AppendKey(t.scratch[:0])
	if e, ok := t.idx[string(t.scratch)]; ok {
		e.tup.M = e.tup.M.Add(tup.M)
		return nil
	}
	if t.n <= 0 {
		return nil
	}
	if len(t.h.es) >= t.n {
		worst := t.h.es[0]
		if c := core.OrderCompare(worst.tup.Vals, tup.Vals, t.keys, t.desc); c < 0 || (c == 0 && worst.seq < i) {
			// The new value orders at or after every kept candidate and,
			// since ranks only worsen, can never enter the first n merged
			// rows: discard.
			return nil
		}
		heap.Pop(&t.h)
		delete(t.idx, worst.key)
	}
	if copyVals {
		tup.Vals = append(rangeval.Tuple(nil), tup.Vals...)
	}
	e := &topkEntry{tup: tup, key: string(t.scratch), seq: i}
	heap.Push(&t.h, e)
	t.idx[e.key] = e
	return nil
}

func (t *topkIter) Close() error          { return t.child.Close() }
func (t *topkIter) Schema() schema.Schema { return t.sch }
