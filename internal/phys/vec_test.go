package phys

import (
	"context"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/opt"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/types"
)

// certDB builds a single-table database of fully certain rows (i, i%mod)
// compacted to sparse storage: both columns flat, multiplicities flat,
// FastCertain — the fast path the columnar scan and the vectorized
// kernels are built for.
func certDB(t testing.TB, rows, mod int) core.DB {
	rel := core.New(schema.New("k", "v"))
	for i := 0; i < rows; i++ {
		rel.Add(core.Tuple{
			Vals: rangeval.Tuple{
				rangeval.Certain(types.Int(int64(i))),
				rangeval.Certain(types.Int(int64(i % mod))),
			},
			M: core.One,
		})
	}
	if rel.Compact(core.StoragePolicy{Mode: core.ReprForceSparse}) != core.ReprSparse {
		t.Fatal("relation did not compact to sparse")
	}
	if !rel.FastCertain() {
		t.Fatal("certain table not FastCertain after compaction")
	}
	return core.DB{"t": rel}
}

// sparsify force-compacts the named tables in place (the others stay
// dense, giving mixed-representation plans).
func sparsify(t testing.TB, db core.DB, names ...string) core.DB {
	for _, n := range names {
		rel, ok := db[n]
		if !ok {
			t.Fatalf("sparsify: no table %q", n)
		}
		if rel.Compact(core.StoragePolicy{Mode: core.ReprForceSparse}) != core.ReprSparse {
			t.Fatalf("sparsify: %q did not compact", n)
		}
	}
	return db
}

// TestSparseScanAliasesColumns is the satellite-1 regression test: a
// columnar scan over a sparse fast-certain table must alias the stored
// columns — zero per-batch tuple materialization, zero steady-state
// allocations per drain. (AllocsPerRun's warm-up run absorbs the one-time
// growth of the reused batch's column slice.)
func TestSparseScanAliasesColumns(t *testing.T) {
	const rows = 8192
	db := certDB(t, rows, 23)
	rel := db["t"]
	ctx := context.Background()

	it := newScanIter(rel, 0, rel.Len(), DefaultBatchSize, false)
	drain := func() {
		if err := it.Open(ctx); err != nil {
			t.Fatal(err)
		}
		got := 0
		for {
			b, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			if !b.Columnar {
				t.Fatal("sparse scan emitted a row batch")
			}
			got += b.Len()
		}
		if got != rows {
			t.Fatalf("drained %d rows, want %d", got, rows)
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, drain)
	if allocs > 0 {
		t.Fatalf("columnar scan allocates %.0f objects per drain, want 0 (per-batch densification crept back in)", allocs)
	}

	// The row-batch scan over the same sparse table densifies per batch —
	// the legacy behavior the columnar path exists to avoid.
	rowIt := newScanIter(rel, 0, rel.Len(), DefaultBatchSize, true)
	rowAllocs := testing.AllocsPerRun(10, func() {
		if err := rowIt.Open(ctx); err != nil {
			t.Fatal(err)
		}
		for {
			b, err := rowIt.Next()
			if err != nil {
				t.Fatal(err)
			}
			if b == nil {
				break
			}
			if b.Columnar {
				t.Fatal("RowBatches scan emitted a columnar batch")
			}
		}
	})
	if rowAllocs == 0 {
		t.Fatal("row-batch sparse scan reported zero allocations; the A/B baseline is not measuring densification")
	}
	t.Logf("scan allocs/drain: columnar %.0f, row %.0f", allocs, rowAllocs)
}

// TestVectorizedAllocatesLessThanRowBatches is the CI gate of the vec
// benchmarks: on the streaming Select→Project chain over a sparse
// fast-certain table, the columnar path must allocate at least 3x less
// than the row-batch path (it is verified bit-identical first).
func TestVectorizedAllocatesLessThanRowBatches(t *testing.T) {
	db := certDB(t, allocRows, 23)
	plan := chainPlan(64)
	ctx := context.Background()
	exec := core.Options{Workers: 1}

	want, err := Exec(ctx, plan, db, Options{RowBatches: true, Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exec(ctx, plan, db, Options{Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Fatalf("columnar result differs from row batches\nrow:\n%.400s\ncolumnar:\n%.400s", want, got)
	}

	colAllocs := testing.AllocsPerRun(3, func() {
		if _, err := Exec(ctx, plan, db, Options{Exec: exec}); err != nil {
			t.Fatal(err)
		}
	})
	rowAllocs := testing.AllocsPerRun(3, func() {
		if _, err := Exec(ctx, plan, db, Options{RowBatches: true, Exec: exec}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("chain allocs/op: columnar %.0f, row batches %.0f (%.1fx)", colAllocs, rowAllocs, rowAllocs/colAllocs)
	if colAllocs*3 > rowAllocs {
		t.Fatalf("columnar path allocates %.0f/op vs %.0f/op for row batches, want >= 3x fewer", colAllocs, rowAllocs)
	}
}

// TestColumnarMatchesRowBatches is the satellite-3 property test: over
// random AU-databases with sparse and mixed table representations, the
// columnar pipeline is bit-identical to the row-batch pipeline and to the
// reference executor for every query in the corpus, worker count and
// batch size.
func TestColumnarMatchesRowBatches(t *testing.T) {
	ctx := context.Background()
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial*97)))
		db := randomAUDB(rng, 3+rng.Intn(6))
		// r sparse, s alternating: sparse-only and mixed plans both occur.
		names := []string{"r"}
		if trial%2 == 0 {
			names = append(names, "s")
		}
		sparsify(t, db, names...)
		cat := ra.CatalogMap(db.Schemas())
		for _, q := range propertyCorpus(rng) {
			compiled, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[trial %d] compile %s: %v", trial, q, err)
			}
			optimized, err := opt.Optimize(compiled, cat)
			if err != nil {
				t.Fatalf("[trial %d] optimize %s: %v", trial, q, err)
			}
			for pi, plan := range []ra.Node{compiled, optimized} {
				want, err := core.Exec(ctx, plan, db, core.Options{Workers: 1})
				if err != nil {
					t.Fatalf("[trial %d] %s (plan %d): reference: %v", trial, q, pi, err)
				}
				wantS := want.Sort().String()
				for _, g := range physOptionGrid {
					for _, rowBatches := range []bool{false, true} {
						got, err := Exec(ctx, plan, db, Options{
							RowBatches: rowBatches,
							BatchSize:  g.batch,
							Exec:       core.Options{Workers: g.workers},
						})
						if err != nil {
							t.Fatalf("[trial %d] %s (plan %d, row=%v w=%d b=%d): %v",
								trial, q, pi, rowBatches, g.workers, g.batch, err)
						}
						if gotS := got.Sort().String(); gotS != wantS {
							t.Fatalf("[trial %d] %s (plan %d, row=%v w=%d b=%d): result differs\nreference:\n%s\ngot:\n%s",
								trial, q, pi, rowBatches, g.workers, g.batch, wantS, gotS)
						}
					}
				}
			}
		}
	}
}

// TestColumnarCompressedMatches: the compressed modes (merge granularity
// observable, Project/Union demoted to breakers) stay bit-identical over
// sparse storage too.
func TestColumnarCompressedMatches(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(181))
	db := sparsify(t, randomAUDB(rng, 8), "r", "s")
	cat := ra.CatalogMap(db.Schemas())
	queries := []string{
		`SELECT r.a + 1 AS a1, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 4`,
		`SELECT b, sum(a) AS s FROM r GROUP BY b`,
		`SELECT a + b AS ab FROM r UNION SELECT c FROM s`,
	}
	opts := core.Options{JoinCompression: 2, AggCompression: 2, Workers: 1}
	for _, q := range queries {
		plan, err := sql.Compile(q, cat)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		want, err := core.Exec(ctx, plan, db, opts)
		if err != nil {
			t.Fatalf("%s: reference: %v", q, err)
		}
		for _, batch := range []int{1, 7, 1024} {
			got, err := Exec(ctx, plan, db, Options{BatchSize: batch, Exec: opts})
			if err != nil {
				t.Fatalf("%s (batch %d): %v", q, batch, err)
			}
			if want.Sort().String() != got.Sort().String() {
				t.Fatalf("%s (batch %d): compressed sparse result differs\nreference:\n%s\ngot:\n%s", q, batch, want, got)
			}
		}
	}
}

// TestColumnarBoundsWorlds: over sparse storage, the columnar pipeline's
// results still bound every possible world (Corollary 2) — the
// enumerated-worlds check of TestPipelinedBoundsWorlds re-run with
// force-sparse relations.
func TestColumnarBoundsWorlds(t *testing.T) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "r2": schema.New("a", "b")}
	queries := []string{
		`SELECT r.a, r2.b FROM r, r2 WHERE r.a = r2.a AND r.b <= 3`,
		`SELECT a FROM r EXCEPT SELECT a FROM r2`,
		`SELECT b, sum(a) AS s FROM r WHERE a <= 4 GROUP BY b`,
	}
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*67 + 29)))
		rRel, rWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(3))
		sRel, sWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		db := sparsify(t, core.DB{"r": rRel, "r2": sRel}, "r", "r2")
		for _, q := range queries {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			res, err := Exec(context.Background(), plan, db, Options{BatchSize: 7})
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			for _, rw := range rWorlds {
				for _, sw := range sWorlds {
					det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "r2": sw})
					if err != nil {
						t.Fatalf("[%d] %s: det: %v", trial, q, err)
					}
					if !res.BoundsWorld(det) {
						t.Fatalf("[%d] %s: columnar result does not bound world:\nworld:\n%s\nresult:\n%s",
							trial, q, det, res)
					}
				}
			}
		}
	}
}
