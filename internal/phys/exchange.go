package phys

import (
	"context"
	"sync"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/phys/vec"
	"github.com/audb/audb/internal/schema"
)

// exchangeBuffer is the per-partition channel depth: how many batches a
// producer may run ahead of the in-order consumer. Peak buffered memory is
// bounded by partitions × (exchangeBuffer+1) × batch size tuples.
const exchangeBuffer = 4

// exchangeIter parallelizes a streaming chain (Select/Project stack over a
// Scan) across workers: the scan is partitioned into contiguous ranges, one
// copy of the chain runs per partition on its own goroutine, and the
// consumer emits partition 0's batches, then partition 1's, and so on.
// Contiguous ranges consumed in partition order reproduce the serial tuple
// order exactly, so parallelism never changes results — the streaming
// analog of internal/core's chunkSpans + concat discipline. Later
// partitions compute ahead bounded by their channel, which is what buys the
// wall-clock win.
type exchangeIter struct {
	parts []iter
	sch   schema.Schema

	cancel context.CancelFunc
	chans  []chan []core.Tuple
	errs   []error
	wg     sync.WaitGroup
	cur    int
	opened bool
	out    vec.Batch
}

func (e *exchangeIter) Open(ctx context.Context) error {
	pctx, cancel := context.WithCancel(ctx)
	e.cancel = cancel
	e.opened = true
	e.cur = 0
	e.chans = make([]chan []core.Tuple, len(e.parts))
	e.errs = make([]error, len(e.parts))
	for i := range e.parts {
		e.chans[i] = make(chan []core.Tuple, exchangeBuffer)
	}
	e.wg.Add(len(e.parts))
	for i := range e.parts {
		go func(i int) {
			defer e.wg.Done()
			defer close(e.chans[i])
			e.errs[i] = produce(pctx, e.parts[i], e.chans[i])
		}(i)
	}
	return nil
}

// produce runs one partition's chain, copying each batch into an owned
// tuple slice before sending (the chain reuses its buffers and columnar
// batches alias storage views, and ownership crosses the goroutine
// boundary here; AppendTuples gathers columnar rows into fresh tuples). A
// send blocked on a slow consumer aborts when the exchange is closed or
// the query is cancelled.
func produce(ctx context.Context, p iter, ch chan<- []core.Tuple) error {
	if err := p.Open(ctx); err != nil {
		p.Close()
		return err
	}
	for {
		b, err := p.Next()
		if err != nil {
			p.Close()
			return err
		}
		if b == nil {
			return p.Close()
		}
		cp := b.AppendTuples(make([]core.Tuple, 0, b.Len()))
		select {
		case ch <- cp:
		case <-ctx.Done():
			p.Close()
			return ctx.Err()
		}
	}
}

func (e *exchangeIter) Next() (*vec.Batch, error) {
	for e.cur < len(e.chans) {
		b, ok := <-e.chans[e.cur]
		if ok {
			e.out.SetRows(b)
			return &e.out, nil
		}
		// Channel closed: the partition finished. Its error slot is
		// published before the close, so this read is ordered.
		if err := e.errs[e.cur]; err != nil {
			return nil, err
		}
		e.cur++
	}
	return nil, nil
}

func (e *exchangeIter) Close() error {
	if !e.opened {
		return nil
	}
	e.opened = false
	e.cancel()
	// Unblock producers parked on a full channel, then join them all:
	// a closed exchange leaks nothing.
	for _, ch := range e.chans {
		for range ch { //nolint:revive // draining
		}
	}
	e.wg.Wait()
	return nil
}

func (e *exchangeIter) Schema() schema.Schema { return e.sch }
