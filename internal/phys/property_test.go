package phys

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/opt"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/sql"
	"github.com/audb/audb/internal/types"
)

// randomAUDB builds a random two-table AU-database exercising certain
// values, proper ranges, optional tuples, duplicate multiplicities and
// value-duplicate tuples (the merge-sensitive case the pipeline must get
// right). Mirrors internal/opt's property-test generator.
func randomAUDB(rng *rand.Rand, rows int) core.DB {
	mk := func(cols ...string) *core.Relation {
		rel := core.New(schema.New(cols...))
		for i := 0; i < rows; i++ {
			vals := make(rangeval.Tuple, len(cols))
			for c := range cols {
				sg := int64(rng.Intn(6))
				switch rng.Intn(3) {
				case 0:
					vals[c] = rangeval.Certain(types.Int(sg))
				case 1:
					vals[c] = rangeval.New(types.Int(sg-int64(rng.Intn(2))), types.Int(sg), types.Int(sg+int64(rng.Intn(3))))
				default:
					vals[c] = rangeval.New(types.Int(0), types.Int(sg), types.Int(5))
				}
			}
			m := core.Mult{Lo: 1, SG: 1, Hi: 1}
			if rng.Intn(3) == 0 {
				m = core.Mult{Lo: 0, SG: 1, Hi: 1 + int64(rng.Intn(2))}
			}
			if rng.Intn(4) == 0 {
				m = core.Mult{Lo: 2, SG: 2, Hi: 2}
			}
			rel.Add(core.Tuple{Vals: vals, M: m})
			if rng.Intn(4) == 0 {
				// A value-duplicate of the previous tuple: merge points
				// (Project/Union/Limit/final) must sum these identically
				// whether they merge early or late.
				rel.Add(core.Tuple{Vals: vals, M: core.Mult{Lo: 0, SG: 1, Hi: 2}})
			}
		}
		return rel
	}
	return core.DB{"r": mk("a", "b"), "s": mk("c", "d")}
}

// propertyCorpus is a randomized query corpus covering every operator:
// streaming chains, pipeline breakers, merge points (project/union), the
// gated operators, and ORDER BY/LIMIT in both fused and standalone form.
func propertyCorpus(rng *rand.Rand) []string {
	k := func() int { return rng.Intn(6) }
	return []string{
		fmt.Sprintf(`SELECT a, b FROM r WHERE a <= %d AND b > %d`, k(), k()),
		fmt.Sprintf(`SELECT a + b AS ab FROM r WHERE a <= %d OR b = %d`, k(), k()),
		fmt.Sprintf(`SELECT r.a, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < %d`, k()),
		fmt.Sprintf(`SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND s.d >= %d`, k()),
		fmt.Sprintf(`SELECT b, sum(a) AS s, count(*) AS n FROM r WHERE a < %d GROUP BY b`, k()),
		fmt.Sprintf(`SELECT b, max(a) AS m FROM r GROUP BY b HAVING max(a) >= %d`, k()),
		fmt.Sprintf(`SELECT DISTINCT b FROM r WHERE a >= %d`, k()),
		fmt.Sprintf(`SELECT a FROM r WHERE a < %d UNION SELECT c FROM s WHERE d > %d`, k(), k()),
		fmt.Sprintf(`SELECT a FROM r EXCEPT SELECT c FROM s WHERE d = %d`, k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE a BETWEEN %d AND %d ORDER BY a LIMIT 3`, k(), k()+3),
		fmt.Sprintf(`SELECT a, b FROM r ORDER BY b DESC LIMIT %d`, 1+k()),
		fmt.Sprintf(`SELECT a, b FROM r WHERE b <= %d ORDER BY a`, k()),
		fmt.Sprintf(`SELECT a FROM r WHERE a <> %d LIMIT 2`, k()),
		fmt.Sprintf(`SELECT x.ab, count(*) AS n FROM (SELECT a + b AS ab FROM r WHERE a <> %d) x GROUP BY x.ab`, k()),
		fmt.Sprintf(`SELECT b, d FROM r JOIN s ON a = c WHERE b <= %d`, k()),
		fmt.Sprintf(`SELECT avg(a) AS m FROM r WHERE b < %d`, k()),
	}
}

// physOptionGrid is the satellite-test matrix: worker counts x batch
// sizes, each of which must be bit-identical to the reference.
var physOptionGrid = []struct {
	workers int
	batch   int
}{
	{1, 1},
	{1, 7},
	{1, 1024},
	{4, 1},
	{4, 7},
	{4, 1024},
}

// TestPipelinedMatchesMaterialized is the pipeline's core guarantee: on a
// random query corpus (compiled plans and their optimized forms), the
// pipelined executor produces bit-identical results to the materializing
// reference executor for every worker count and batch size, in both phys
// modes.
func TestPipelinedMatchesMaterialized(t *testing.T) {
	ctx := context.Background()
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial*131)))
		db := randomAUDB(rng, 3+rng.Intn(6))
		cat := ra.CatalogMap(db.Schemas())
		for _, q := range propertyCorpus(rng) {
			compiled, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[trial %d] compile %s: %v", trial, q, err)
			}
			optimized, err := opt.Optimize(compiled, cat)
			if err != nil {
				t.Fatalf("[trial %d] optimize %s: %v", trial, q, err)
			}
			for pi, plan := range []ra.Node{compiled, optimized} {
				want, err := core.Exec(ctx, plan, db, core.Options{Workers: 1})
				if err != nil {
					t.Fatalf("[trial %d] %s (plan %d): reference: %v", trial, q, pi, err)
				}
				wantS := want.Sort().String()
				for _, g := range physOptionGrid {
					for _, mode := range []Mode{Pipelined, Materialized} {
						got, err := Exec(ctx, plan, db, Options{
							Mode:      mode,
							BatchSize: g.batch,
							Exec:      core.Options{Workers: g.workers},
						})
						if err != nil {
							t.Fatalf("[trial %d] %s (plan %d, %v w=%d b=%d): %v",
								trial, q, pi, mode, g.workers, g.batch, err)
						}
						if gotS := got.Sort().String(); gotS != wantS {
							t.Fatalf("[trial %d] %s (plan %d, %v w=%d b=%d): result differs\nreference:\n%s\ngot:\n%s\nplan:\n%s",
								trial, q, pi, mode, g.workers, g.batch, wantS, gotS, ra.Render(plan))
						}
					}
				}
			}
		}
	}
}

// TestPipelinedCompressedMatches: with the split+compress optimizations on,
// merge granularity is observable (equi-depth bucket boundaries count
// tuples), so the compiler materializes Project and Union — and results
// must still be bit-identical to the reference executor with the same
// options.
func TestPipelinedCompressedMatches(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))
	db := randomAUDB(rng, 8)
	cat := ra.CatalogMap(db.Schemas())
	queries := []string{
		`SELECT r.a + 1 AS a1, s.d FROM r JOIN s ON r.a = s.c WHERE r.b < 4`,
		`SELECT b, sum(a) AS s FROM r GROUP BY b`,
		`SELECT a + b AS ab FROM r UNION SELECT c FROM s`,
	}
	opts := core.Options{JoinCompression: 2, AggCompression: 2, Workers: 1}
	for _, q := range queries {
		plan, err := sql.Compile(q, cat)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		want, err := core.Exec(ctx, plan, db, opts)
		if err != nil {
			t.Fatalf("%s: reference: %v", q, err)
		}
		for _, batch := range []int{1, 1024} {
			got, err := Exec(ctx, plan, db, Options{BatchSize: batch, Exec: opts})
			if err != nil {
				t.Fatalf("%s (batch %d): %v", q, batch, err)
			}
			if want.Sort().String() != got.Sort().String() {
				t.Fatalf("%s (batch %d): compressed result differs\nreference:\n%s\ngot:\n%s", q, batch, want, got)
			}
		}
	}
}

// TestPipelinedBoundsWorlds: on random incomplete databases with every
// possible world enumerated, the pipelined result must keep bounding every
// world (Corollary 2) — the same check internal/opt runs for the
// optimizer, reused here for the physical layer.
func TestPipelinedBoundsWorlds(t *testing.T) {
	cat := ra.CatalogMap{"r": schema.New("a", "b"), "r2": schema.New("a", "b")}
	queries := []string{
		`SELECT r.a, r2.b FROM r, r2 WHERE r.a = r2.a AND r.b <= 3`,
		`SELECT a FROM r EXCEPT SELECT a FROM r2`,
		`SELECT DISTINCT a FROM r WHERE b >= 1`,
		`SELECT b, sum(a) AS s FROM r WHERE a <= 4 GROUP BY b`,
		`SELECT a, b FROM r ORDER BY a LIMIT 2`,
	}
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*59 + 11)))
		rRel, rWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(3))
		sRel, sWorlds := randomIncomplete(rng, schema.New("a", "b"), 1+rng.Intn(2))
		db := core.DB{"r": rRel, "r2": sRel}
		for _, q := range queries {
			plan, err := sql.Compile(q, cat)
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			res, err := Exec(context.Background(), plan, db, Options{BatchSize: 7})
			if err != nil {
				t.Fatalf("[%d] %s: %v", trial, q, err)
			}
			// ORDER BY/LIMIT are presentation operators; bound checks run
			// against the un-truncated semantics, so strip them from the
			// deterministic plan the worlds evaluate (the AU result of
			// LIMIT bounds a subset — check only tuple-level containment
			// for those).
			if _, isLimit := plan.(*ra.Limit); isLimit {
				continue
			}
			for _, rw := range rWorlds {
				for _, sw := range sWorlds {
					det, err := bag.Exec(context.Background(), plan, bag.DB{"r": rw, "r2": sw})
					if err != nil {
						t.Fatalf("[%d] %s: det: %v", trial, q, err)
					}
					if !res.BoundsWorld(det) {
						t.Fatalf("[%d] %s: pipelined result does not bound world:\nworld:\n%s\nresult:\n%s",
							trial, q, det, res)
					}
				}
			}
		}
	}
}

// randomIncomplete builds an AU-relation plus all its possible worlds
// (the generator of internal/opt's and internal/encoding's property
// tests).
func randomIncomplete(r *rand.Rand, s schema.Schema, rows int) (*core.Relation, []*bag.Relation) {
	type rowSpec struct {
		alts     []types.Tuple
		optional bool
	}
	var specs []rowSpec
	for i := 0; i < rows; i++ {
		n := 1 + r.Intn(2)
		spec := rowSpec{optional: r.Intn(4) == 0}
		for a := 0; a < n; a++ {
			t := make(types.Tuple, s.Arity())
			for c := range t {
				t[c] = types.Int(int64(r.Intn(5)))
			}
			spec.alts = append(spec.alts, t)
		}
		specs = append(specs, spec)
	}
	au := core.New(s)
	for _, spec := range specs {
		vals := make(rangeval.Tuple, s.Arity())
		for c := 0; c < s.Arity(); c++ {
			lo, hi := spec.alts[0][c], spec.alts[0][c]
			for _, a := range spec.alts[1:] {
				lo, hi = types.Min(lo, a[c]), types.Max(hi, a[c])
			}
			vals[c] = rangeval.New(lo, spec.alts[0][c], hi)
		}
		m := core.Mult{Lo: 1, SG: 1, Hi: 1}
		if spec.optional {
			m.Lo = 0
		}
		au.Add(core.Tuple{Vals: vals, M: m})
	}
	worlds := []*bag.Relation{bag.New(s)}
	for _, spec := range specs {
		var next []*bag.Relation
		for _, w := range worlds {
			for _, alt := range spec.alts {
				nw := w.Clone()
				nw.Add(alt, 1)
				next = append(next, nw)
			}
			if spec.optional {
				next = append(next, w.Clone())
			}
		}
		worlds = next
	}
	for _, w := range worlds {
		w.Merge()
	}
	return au, worlds
}
