package phys

import (
	"context"
	"time"

	"github.com/audb/audb/internal/metrics"
	"github.com/audb/audb/internal/phys/vec"
	"github.com/audb/audb/internal/schema"
)

// statIter wraps an iterator with the EXPLAIN ANALYZE counters: rows and
// non-empty batches emitted (split by batch representation, with physical
// row counts so the mean selection-vector density of columnar batches is
// reportable), and cumulative wall time spent inside the operator
// (children included — subtract theirs for self time). Wrappers exist
// only when Options.Analyze is set, so the counters cost nothing on the
// regular path. Partition sub-chains inside an exchange run concurrently
// and are not individually instrumented; their work is reported at the
// exchange operator.
type statIter struct {
	inner iter
	st    *metrics.OpStats
}

func (s *statIter) Open(ctx context.Context) error {
	start := time.Now()
	err := s.inner.Open(ctx)
	s.st.Elapsed += time.Since(start)
	return err
}

func (s *statIter) Next() (*vec.Batch, error) {
	start := time.Now()
	b, err := s.inner.Next()
	s.st.Elapsed += time.Since(start)
	if b != nil {
		live := int64(b.Len())
		s.st.Rows += live
		s.st.Batches++
		if b.Columnar {
			s.st.ColBatches++
			s.st.ColRows += live
			s.st.ColPhysRows += int64(b.N)
		}
	}
	return b, err
}

func (s *statIter) Close() error {
	start := time.Now()
	err := s.inner.Close()
	s.st.Elapsed += time.Since(start)
	return err
}

func (s *statIter) Schema() schema.Schema { return s.inner.Schema() }
