package phys

import (
	"context"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ra"
)

const allocRows = 20000

// chainSetup is the acceptance-criteria streaming chain:
// Scan→Select→Project→Limit over a table large enough that materializing
// intermediates dominates allocation.
func chainSetup() (core.DB, ra.Node) {
	return seqDB(allocRows, 23), chainPlan(64)
}

// TestPipelinedAllocatesLessThanMaterialized is the CI gate of the pipe
// benchmarks: on the streaming chain, the pipelined executor must not
// allocate more than the materializing reference (it allocates strictly
// less: no intermediate relations, reused batch buffers, O(limit) merge
// state). Run with Workers=1 so both executors stay on one goroutine and
// AllocsPerRun counts deterministically.
func TestPipelinedAllocatesLessThanMaterialized(t *testing.T) {
	db, plan := chainSetup()
	ctx := context.Background()
	opts := core.Options{Workers: 1}

	pipelined := testing.AllocsPerRun(3, func() {
		if _, err := Exec(ctx, plan, db, Options{Exec: opts}); err != nil {
			t.Fatal(err)
		}
	})
	materialized := testing.AllocsPerRun(3, func() {
		if _, err := core.Exec(ctx, plan, db, opts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("streaming chain allocs/op: pipelined %.0f, materialized %.0f (%.1fx)",
		pipelined, materialized, materialized/pipelined)
	if pipelined > materialized {
		t.Fatalf("pipelined executor allocates more than the materializing one: %.0f > %.0f allocs/op",
			pipelined, materialized)
	}
}

// TestTopKAllocatesLessThanSort: the fused ORDER BY + LIMIT must beat the
// full sort + merge + truncate on allocations (O(k) candidate state vs a
// sorted copy and a full merge map).
func TestTopKAllocatesLessThanSort(t *testing.T) {
	db := seqDB(allocRows, 23)
	plan := topkPlan(16, false)
	ctx := context.Background()
	opts := core.Options{Workers: 1}

	pipelined := testing.AllocsPerRun(3, func() {
		if _, err := Exec(ctx, plan, db, Options{Exec: opts}); err != nil {
			t.Fatal(err)
		}
	})
	materialized := testing.AllocsPerRun(3, func() {
		if _, err := core.Exec(ctx, plan, db, opts); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("top-k allocs/op: pipelined %.0f, materialized %.0f (%.1fx)",
		pipelined, materialized, materialized/pipelined)
	if pipelined > materialized {
		t.Fatalf("fused top-k allocates more than sort+limit: %.0f > %.0f allocs/op", pipelined, materialized)
	}
}

// The pipe benchmark pair CI publishes with -benchmem: the same chain on
// both executors (see also `audbench -exp pipe` for the peak-allocation
// table).
func benchExec(b *testing.B, pipelined bool, plan ra.Node) {
	db := seqDB(allocRows, 23)
	ctx := context.Background()
	opts := core.Options{Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pipelined {
			_, err = Exec(ctx, plan, db, Options{Exec: opts})
		} else {
			_, err = core.Exec(ctx, plan, db, opts)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeChainPipelined(b *testing.B)    { benchExec(b, true, chainPlan(64)) }
func BenchmarkPipeChainMaterialized(b *testing.B) { benchExec(b, false, chainPlan(64)) }
func BenchmarkPipeTopKPipelined(b *testing.B)     { benchExec(b, true, topkPlan(16, false)) }
func BenchmarkPipeTopKMaterialized(b *testing.B)  { benchExec(b, false, topkPlan(16, false)) }
