// Package vec defines the columnar batch format of the pipelined
// executor: struct-of-arrays batches that carry the sparse storage's
// rangeval.Col columns (one slice per column, flat when the source column
// is certain) and flat-or-dense multiplicities straight out of base-table
// storage, plus a selection vector so selection marks survivors instead
// of copying them.
//
// A Batch has two representations:
//
//   - Row batches (Columnar == false) wrap a []core.Tuple slice — the
//     format of dense-table scans and of everything a pipeline breaker or
//     top-k/limit re-emits. Row batches behave exactly like the
//     pre-columnar pipeline: appending the Tuple structs is a copy,
//     attribute ranges stay shared and immutable.
//   - Columnar batches (Columnar == true) hold N physical rows as
//     rangeval.Col column views plus one multiplicity per row (MFlat
//     when every multiplicity is certain, MDense otherwise), with Sel
//     selecting the live subset.
//
// Either way a batch is valid only until the producer's next Next or
// Close call. Consumers that retain rows must copy them: Tuple-struct
// appends for row batches, AppendTuples or AppendRow gathers for columnar
// ones.
package vec

import (
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
)

// Batch is one unit of data flow between pipelined operators.
type Batch struct {
	// Rows is the row representation (nil when Columnar).
	Rows []core.Tuple

	// Columnar selects the representation; the fields below are
	// meaningful only when it is set.
	Columnar bool
	// Cols holds one column view per attribute, each of length N. The
	// views alias base-table storage or an operator's reused output
	// buffers — read-only, per the rangeval.Col contract.
	Cols []rangeval.Col
	// MFlat/MDense hold the per-physical-row multiplicities; exactly one
	// is non-nil (MFlat m means the certain triple (m,m,m)).
	MFlat  []int64
	MDense []core.Mult
	// N is the physical row count.
	N int
	// Sel is the selection vector: the ascending physical indexes of the
	// live rows. nil means every physical row is live.
	Sel []int
}

// SetRows resets b to the row representation over rows (aliased, not
// copied).
func (b *Batch) SetRows(rows []core.Tuple) {
	b.Rows = rows
	b.Columnar = false
	b.Cols = b.Cols[:0]
	b.MFlat, b.MDense = nil, nil
	b.N, b.Sel = 0, nil
}

// SetSparseSpan resets b to a columnar view of rows [lo, hi) of sparse
// storage (as returned by core.Relation.SparseView), sharing every slice:
// the zero-densification scan. b's column slice is reused across calls.
func (b *Batch) SetSparseSpan(cols []rangeval.Col, mflat []int64, mdense []core.Mult, lo, hi int) {
	b.Rows = nil
	b.Columnar = true
	if cap(b.Cols) < len(cols) {
		b.Cols = make([]rangeval.Col, len(cols))
	}
	b.Cols = b.Cols[:len(cols)]
	for c := range cols {
		b.Cols[c] = cols[c].Slice(lo, hi)
	}
	if mflat != nil {
		b.MFlat, b.MDense = mflat[lo:hi], nil
	} else {
		b.MFlat, b.MDense = nil, mdense[lo:hi]
	}
	b.N = hi - lo
	b.Sel = nil
}

// Len returns the live row count.
func (b *Batch) Len() int {
	if !b.Columnar {
		return len(b.Rows)
	}
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// MultAt returns physical row i's multiplicity triple (for a row batch, i
// indexes Rows).
func (b *Batch) MultAt(i int) core.Mult {
	if !b.Columnar {
		return b.Rows[i].M
	}
	if b.MFlat != nil {
		m := b.MFlat[i]
		return core.Mult{Lo: m, SG: m, Hi: m}
	}
	return b.MDense[i]
}

// AppendRow gathers physical row i's attribute triples onto dst. The
// result shares only immutable value internals with the batch, so it may
// be retained.
func (b *Batch) AppendRow(dst rangeval.Tuple, i int) rangeval.Tuple {
	for _, c := range b.Cols {
		dst = append(dst, c.At(i))
	}
	return dst
}

// AppendRowKey appends physical row i's injective triple-tuple encoding
// to buf — byte-identical to Tuple.Vals.AppendKey on the densified row,
// so probe maps may mix keys from both representations.
func (b *Batch) AppendRowKey(buf []byte, i int) []byte {
	for _, c := range b.Cols {
		buf = c.AppendRowKey(buf, i)
	}
	return buf
}

// AppendTuples densifies the live rows onto dst — the boundary crossing
// into row-at-a-time consumers (pipeline breakers, the exchange operator,
// the final drain). Row batches append their Tuple structs unchanged;
// columnar batches materialize fresh tuples carved from one arena, so the
// result satisfies the retention contract either way.
func (b *Batch) AppendTuples(dst []core.Tuple) []core.Tuple {
	if !b.Columnar {
		return append(dst, b.Rows...)
	}
	live := b.Len()
	if live == 0 {
		return dst
	}
	arity := len(b.Cols)
	arena := make(rangeval.Tuple, 0, live*arity)
	if b.Sel != nil {
		for _, i := range b.Sel {
			start := len(arena)
			arena = b.AppendRow(arena, i)
			dst = append(dst, core.Tuple{Vals: arena[start:len(arena):len(arena)], M: b.MultAt(i)})
		}
		return dst
	}
	for i := 0; i < b.N; i++ {
		start := len(arena)
		arena = b.AppendRow(arena, i)
		dst = append(dst, core.Tuple{Vals: arena[start:len(arena):len(arena)], M: b.MultAt(i)})
	}
	return dst
}
