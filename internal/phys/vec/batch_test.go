package vec

import (
	"bytes"
	"testing"

	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/types"
)

// testCols builds one flat and one dense column over n rows plus the
// equivalent dense tuples, with every 3rd multiplicity uncertain when
// mixedMult is set.
func testCols(n int, mixedMult bool) (cols []rangeval.Col, mflat []int64, mdense []core.Mult, rows []core.Tuple) {
	var flat, dense rangeval.ColBuilder
	for i := 0; i < n; i++ {
		fv := rangeval.Certain(types.Int(int64(i)))
		dv := rangeval.New(types.Int(int64(i-1)), types.Int(int64(i)), types.Int(int64(i+1)))
		flat.Append(fv)
		dense.Append(dv)
		m := core.One
		if mixedMult && i%3 == 0 {
			m = core.Mult{Lo: 0, SG: 1, Hi: 2}
		}
		mdense = append(mdense, m)
		mflat = append(mflat, 1)
		rows = append(rows, core.Tuple{Vals: rangeval.Tuple{fv, dv}, M: m})
	}
	cols = []rangeval.Col{flat.Build(), dense.Build()}
	if mixedMult {
		mflat = nil
	} else {
		mdense = nil
		for i := range rows {
			rows[i].M = core.One
		}
	}
	return cols, mflat, mdense, rows
}

func TestBatchSparseSpan(t *testing.T) {
	cols, mflat, _, rows := testCols(10, false)
	var b Batch
	b.SetSparseSpan(cols, mflat, nil, 2, 7)
	if !b.Columnar || b.N != 5 || b.Len() != 5 {
		t.Fatalf("span: columnar=%v N=%d len=%d", b.Columnar, b.N, b.Len())
	}
	for i := 0; i < b.N; i++ {
		got := b.AppendRow(nil, i)
		if want := rows[2+i].Vals; types.Compare(got[0].SG, want[0].SG) != 0 || types.Compare(got[1].Lo, want[1].Lo) != 0 {
			t.Fatalf("row %d gathered %v, want %v", i, got, want)
		}
		if m := b.MultAt(i); m != core.One {
			t.Fatalf("row %d mult %v", i, m)
		}
	}
	// Switching to rows resets the columnar fields.
	b.SetRows(rows[:3])
	if b.Columnar || b.Len() != 3 || b.MultAt(1) != rows[1].M {
		t.Fatalf("SetRows: columnar=%v len=%d", b.Columnar, b.Len())
	}
}

func TestBatchMultDense(t *testing.T) {
	cols, _, mdense, rows := testCols(9, true)
	var b Batch
	b.SetSparseSpan(cols, nil, mdense, 0, 9)
	for i := range rows {
		if b.MultAt(i) != rows[i].M {
			t.Fatalf("row %d mult %v, want %v", i, b.MultAt(i), rows[i].M)
		}
	}
}

// TestBatchRowKeyCompat: the columnar key encoding must be byte-identical
// to the dense tuple encoding, so probe maps (limit, top-k) may mix keys
// built from either representation.
func TestBatchRowKeyCompat(t *testing.T) {
	cols, mflat, _, rows := testCols(8, false)
	var b Batch
	b.SetSparseSpan(cols, mflat, nil, 0, 8)
	for i := range rows {
		col := b.AppendRowKey(nil, i)
		row := rows[i].Vals.AppendKey(nil)
		if !bytes.Equal(col, row) {
			t.Fatalf("row %d: columnar key %x != tuple key %x", i, col, row)
		}
	}
}

// TestBatchAppendTuples: densification honors the selection vector, keeps
// input order, and produces retainable tuples for both representations.
func TestBatchAppendTuples(t *testing.T) {
	cols, mflat, _, rows := testCols(6, false)
	var b Batch
	b.SetSparseSpan(cols, mflat, nil, 0, 6)
	b.Sel = []int{1, 3, 4}
	if b.Len() != 3 {
		t.Fatalf("live = %d", b.Len())
	}
	got := b.AppendTuples(nil)
	if len(got) != 3 {
		t.Fatalf("densified %d rows", len(got))
	}
	for k, i := range b.Sel {
		if types.Compare(got[k].Vals[0].SG, rows[i].Vals[0].SG) != 0 {
			t.Fatalf("sel %d: %v, want %v", k, got[k].Vals, rows[i].Vals)
		}
	}
	var rb Batch
	rb.SetRows(rows)
	if got := rb.AppendTuples(nil); len(got) != len(rows) {
		t.Fatalf("row densify %d rows", len(got))
	}
	// Empty live set appends nothing.
	b.Sel = []int{}
	if got := b.AppendTuples(nil); len(got) != 0 {
		t.Fatalf("empty sel densified %d rows", len(got))
	}
}
