package bag

import (
	"context"
	"strings"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

func row(vs ...interface{}) types.Tuple {
	out := make(types.Tuple, len(vs))
	for i, v := range vs {
		switch x := v.(type) {
		case int:
			out[i] = types.Int(int64(x))
		case int64:
			out[i] = types.Int(x)
		case float64:
			out[i] = types.Float(x)
		case string:
			out[i] = types.String(x)
		case bool:
			out[i] = types.Bool(x)
		case types.Value:
			out[i] = x
		default:
			panic("bad row value")
		}
	}
	return out
}

func testDB() DB {
	r := New(schema.New("a", "b"))
	r.Add(row(1, "x"), 2)
	r.Add(row(2, "y"), 1)
	r.Add(row(3, "x"), 1)
	s := New(schema.New("c", "d"))
	s.Add(row(1, 10), 1)
	s.Add(row(2, 20), 3)
	s.Add(row(9, 90), 1)
	return DB{"r": r, "s": s}
}

func mustExec(t *testing.T, n ra.Node, db DB) *Relation {
	t.Helper()
	out, err := Exec(context.Background(), n, db)
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	return out
}

func TestRelationBasics(t *testing.T) {
	r := New(schema.New("a"))
	r.Add(row(1), 2)
	r.Add(row(1), 3)
	r.Add(row(2), 0) // dropped
	r.Add(row(3), -1)
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
	if r.Size() != 5 {
		t.Errorf("Size = %d", r.Size())
	}
	r.Merge()
	if r.Len() != 1 || r.Counts[0] != 5 {
		t.Error("Merge sums duplicates")
	}
	if r.Count(row(1)) != 5 || r.Count(row(9)) != 0 {
		t.Error("Count")
	}
	c := r.Clone()
	c.Tuples[0][0] = types.Int(99)
	if r.Tuples[0][0] != types.Int(1) {
		t.Error("Clone aliases tuples")
	}
	if !strings.Contains(r.String(), "x5") {
		t.Errorf("String: %q", r.String())
	}
}

func TestSortAndEqual(t *testing.T) {
	r := New(schema.New("a"))
	r.Add(row(3), 1)
	r.Add(row(1), 2)
	r.Add(row(2), 1)
	r.Sort()
	if r.Tuples[0][0] != types.Int(1) || r.Counts[0] != 2 {
		t.Error("Sort keeps counts aligned")
	}
	o := New(schema.New("a"))
	o.Add(row(2), 1)
	o.Add(row(1), 2)
	o.Add(row(3), 1)
	if !r.Equal(o) {
		t.Error("Equal should be order-insensitive")
	}
	o.Add(row(4), 1)
	if r.Equal(o) {
		t.Error("Equal detects extra tuple")
	}
	p := New(schema.New("a"))
	p.Add(row(1), 1)
	p.Add(row(2), 1)
	p.Add(row(3), 1)
	if r.Equal(p) {
		t.Error("Equal detects count mismatch")
	}
}

func TestScanSelect(t *testing.T) {
	db := testDB()
	out := mustExec(t, &ra.Select{
		Child: &ra.Scan{Table: "r"},
		Pred:  expr.Eq(expr.Col(1, "b"), expr.CStr("x")),
	}, db)
	if out.Size() != 3 {
		t.Errorf("selected size %d", out.Size())
	}
	if _, err := Exec(context.Background(), &ra.Scan{Table: "none"}, db); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := Exec(context.Background(), &ra.Select{Child: &ra.Scan{Table: "r"}, Pred: expr.Div(expr.CInt(1), expr.CInt(0))}, db); err == nil {
		t.Error("predicate error should surface")
	}
}

func TestProject(t *testing.T) {
	db := testDB()
	out := mustExec(t, &ra.Project{
		Child: &ra.Scan{Table: "r"},
		Cols:  []ra.ProjCol{{E: expr.Col(1, "b"), Name: "b"}},
	}, db)
	// (x) has multiplicity 2+1=3, (y) 1; merged
	if out.Len() != 2 || out.Count(row("x")) != 3 || out.Count(row("y")) != 1 {
		t.Errorf("projection: %s", out)
	}
	// Generalized projection computes expressions.
	out = mustExec(t, &ra.Project{
		Child: &ra.Scan{Table: "r"},
		Cols:  []ra.ProjCol{{E: expr.Add(expr.Col(0, "a"), expr.CInt(10)), Name: "a10"}},
	}, db)
	if out.Count(row(11)) != 2 {
		t.Errorf("computed projection: %s", out)
	}
}

func TestHashJoinAndThetaJoin(t *testing.T) {
	db := testDB()
	// Equi join r.a = s.c
	out := mustExec(t, &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
	}, db)
	// (1,x,1,10)x2, (2,y,2,20)x3
	if out.Size() != 5 {
		t.Errorf("join size: %d\n%s", out.Size(), out)
	}
	if out.Count(row(1, "x", 1, 10)) != 2 || out.Count(row(2, "y", 2, 20)) != 3 {
		t.Errorf("join multiplicities:\n%s", out)
	}
	// Theta join a < c
	out = mustExec(t, &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond:  expr.Lt(expr.Col(0, "a"), expr.Col(2, "c")),
	}, db)
	want := int64(2*2 + 1 + 2 + 1 + 3 + 1) // each r tuple paired with s tuples having c > a
	// r=(1,x)x2 pairs with c=2 (x3) and c=9 (x1): 2*3+2*1 = 8
	// r=(2,y)x1 pairs with c=9: 1 ; r=(3,x)x1 pairs with c=9: 1
	want = 8 + 1 + 1
	if out.Size() != want {
		t.Errorf("theta join size: %d want %d", out.Size(), want)
	}
	// Cross product (nil cond).
	out = mustExec(t, &ra.Join{Left: &ra.Scan{Table: "r"}, Right: &ra.Scan{Table: "s"}}, db)
	if out.Size() != 4*5 {
		t.Errorf("cross size: %d", out.Size())
	}
	// Hash join with residual condition.
	out = mustExec(t, &ra.Join{
		Left:  &ra.Scan{Table: "r"},
		Right: &ra.Scan{Table: "s"},
		Cond: expr.And(
			expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
			expr.Gt(expr.Col(3, "d"), expr.CInt(15))),
	}, db)
	if out.Size() != 3 || out.Count(row(2, "y", 2, 20)) != 3 {
		t.Errorf("residual join:\n%s", out)
	}
}

func TestUnionDiffDistinct(t *testing.T) {
	db := testDB()
	u := mustExec(t, &ra.Union{
		Left:  &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{{E: expr.Col(0, "a"), Name: "v"}}},
		Right: &ra.Project{Child: &ra.Scan{Table: "s"}, Cols: []ra.ProjCol{{E: expr.Col(0, "c"), Name: "v"}}},
	}, db)
	if u.Count(row(1)) != 3 || u.Count(row(2)) != 4 || u.Count(row(9)) != 1 {
		t.Errorf("union:\n%s", u)
	}
	d := mustExec(t, &ra.Diff{
		Left:  &ra.Project{Child: &ra.Scan{Table: "r"}, Cols: []ra.ProjCol{{E: expr.Col(0, "a"), Name: "v"}}},
		Right: &ra.Project{Child: &ra.Scan{Table: "s"}, Cols: []ra.ProjCol{{E: expr.Col(0, "c"), Name: "v"}}},
	}, db)
	// r side: 1x2, 2x1, 3x1 ; s side: 1x1, 2x3, 9x1 -> monus: 1x1, 3x1
	if d.Count(row(1)) != 1 || d.Count(row(2)) != 0 || d.Count(row(3)) != 1 {
		t.Errorf("diff:\n%s", d)
	}
	dd := mustExec(t, &ra.Distinct{Child: &ra.Scan{Table: "r"}}, db)
	if dd.Size() != 3 {
		t.Errorf("distinct size: %d", dd.Size())
	}
	// Arity mismatches surface as errors.
	if _, err := Exec(context.Background(), &ra.Union{Left: &ra.Scan{Table: "r"}, Right: &ra.Project{Child: &ra.Scan{Table: "s"}, Cols: []ra.ProjCol{{E: expr.Col(0, ""), Name: "c"}}}}, db); err == nil {
		t.Error("union arity mismatch should error")
	}
	if _, err := Exec(context.Background(), &ra.Diff{Left: &ra.Scan{Table: "r"}, Right: &ra.Project{Child: &ra.Scan{Table: "s"}, Cols: []ra.ProjCol{{E: expr.Col(0, ""), Name: "c"}}}}, db); err == nil {
		t.Error("diff arity mismatch should error")
	}
}

func TestAggregation(t *testing.T) {
	db := testDB()
	// Group r by b: count(*), sum(a), min(a), max(a), avg(a)
	out := mustExec(t, &ra.Agg{
		Child:   &ra.Scan{Table: "r"},
		GroupBy: []int{1},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggCount, Name: "cnt"},
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
			{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			{Fn: ra.AggMax, Arg: expr.Col(0, "a"), Name: "mx"},
			{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"},
		},
	}, db)
	// group x: rows (1,x)x2,(3,x)x1 -> cnt 3, sum 5, min 1, max 3, avg 5/3
	if out.Count(row("x", 3, 5, 1, 3, 5.0/3.0)) != 1 {
		t.Errorf("group x wrong:\n%s", out)
	}
	if out.Count(row("y", 1, 2, 2, 2, 2.0)) != 1 {
		t.Errorf("group y wrong:\n%s", out)
	}
}

func TestAggregationNoGroupByAndEmpty(t *testing.T) {
	db := testDB()
	out := mustExec(t, &ra.Agg{
		Child: &ra.Scan{Table: "r"},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggCount, Name: "cnt"},
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
		},
	}, db)
	if out.Len() != 1 || out.Count(row(4, 7)) != 1 {
		t.Errorf("agg no group:\n%s", out)
	}
	// Empty input: single row with neutral elements.
	empty := &ra.Select{Child: &ra.Scan{Table: "r"}, Pred: expr.CBool(false)}
	out = mustExec(t, &ra.Agg{
		Child: empty,
		Aggs: []ra.AggSpec{
			{Fn: ra.AggCount, Name: "cnt"},
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Name: "s"},
			{Fn: ra.AggMin, Arg: expr.Col(0, "a"), Name: "mn"},
			{Fn: ra.AggAvg, Arg: expr.Col(0, "a"), Name: "av"},
		},
	}, db)
	if out.Len() != 1 {
		t.Fatalf("empty agg rows: %d", out.Len())
	}
	got := out.Tuples[0]
	if got[0] != types.Int(0) || got[1] != types.Int(0) {
		t.Errorf("empty count/sum: %v", got)
	}
	if got[2].Kind() != types.KindPosInf {
		t.Errorf("empty min should be +inf: %v", got[2])
	}
	if got[3] != types.Float(0) {
		t.Errorf("empty avg: %v", got[3])
	}
	// Empty input WITH group-by: no rows.
	out = mustExec(t, &ra.Agg{
		Child:   empty,
		GroupBy: []int{1},
		Aggs:    []ra.AggSpec{{Fn: ra.AggCount, Name: "cnt"}},
	}, db)
	if out.Len() != 0 {
		t.Errorf("empty grouped agg rows: %d", out.Len())
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB()
	out := mustExec(t, &ra.Agg{
		Child: &ra.Scan{Table: "r"},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggCount, Arg: expr.Col(1, "b"), Distinct: true, Name: "dc"},
			{Fn: ra.AggSum, Arg: expr.Col(0, "a"), Distinct: true, Name: "ds"},
		},
	}, db)
	// distinct b: {x,y} -> 2 ; distinct a: {1,2,3} -> 6
	if out.Count(row(2, 6)) != 1 {
		t.Errorf("distinct agg:\n%s", out)
	}
}

func TestCountNullSkipping(t *testing.T) {
	r := New(schema.New("v"))
	r.Add(types.Tuple{types.Null()}, 2)
	r.Add(row(5), 1)
	db := DB{"t": r}
	out := mustExec(t, &ra.Agg{
		Child: &ra.Scan{Table: "t"},
		Aggs: []ra.AggSpec{
			{Fn: ra.AggCount, Arg: expr.Col(0, "v"), Name: "c"},
			{Fn: ra.AggCount, Name: "cstar"},
			{Fn: ra.AggSum, Arg: expr.Col(0, "v"), Name: "s"},
		},
	}, db)
	if out.Count(row(1, 3, 5)) != 1 {
		t.Errorf("null handling:\n%s", out)
	}
}

func TestOrderBy(t *testing.T) {
	db := testDB()
	out := mustExec(t, &ra.OrderBy{Child: &ra.Scan{Table: "s"}, Keys: []int{1}, Desc: true}, db)
	if out.Tuples[0][1] != types.Int(90) {
		t.Errorf("order by desc:\n%s", out)
	}
	out = mustExec(t, &ra.OrderBy{Child: &ra.Scan{Table: "s"}, Keys: []int{1}}, db)
	if out.Tuples[0][1] != types.Int(10) {
		t.Errorf("order by asc:\n%s", out)
	}
}

func TestInferSchemaAndValidate(t *testing.T) {
	db := testDB()
	cat := ra.CatalogMap(db.Schemas())
	plan := &ra.Agg{
		Child: &ra.Join{
			Left:  &ra.Scan{Table: "r"},
			Right: &ra.Scan{Table: "s"},
			Cond:  expr.Eq(expr.Col(0, "a"), expr.Col(2, "c")),
		},
		GroupBy: []int{1},
		Aggs:    []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(3, "d"), Name: "total"}},
	}
	s, err := ra.InferSchema(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "(b, total)" {
		t.Errorf("schema: %s", s)
	}
	if err := ra.Validate(plan, cat); err != nil {
		t.Errorf("validate: %v", err)
	}
	bad := &ra.Select{Child: &ra.Scan{Table: "r"}, Pred: expr.Eq(expr.Col(9, "?"), expr.CInt(1))}
	if err := ra.Validate(bad, cat); err == nil {
		t.Error("out-of-range predicate should fail validation")
	}
	if got := ra.Tables(plan); len(got) != 2 {
		t.Errorf("tables: %v", got)
	}
	if ra.Render(plan) == "" {
		t.Error("render")
	}
}
