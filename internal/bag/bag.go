// Package bag implements the deterministic bag-relational substrate: an
// in-memory N-relation (multiset) engine executing RA_agg plans. It plays
// the role of the conventional DBMS the paper's middleware runs on top of
// (the paper used Postgres; see DESIGN.md, substitution 1) and is also used
// directly to evaluate queries over individual possible worlds.
package bag

import (
	"fmt"
	"sort"
	"strings"

	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Relation is a bag (N-relation): tuples with positive multiplicities.
// Tuples need not be distinct; Merge normalizes.
type Relation struct {
	Schema schema.Schema
	Tuples []types.Tuple
	Counts []int64
}

// New creates an empty relation with the given schema.
func New(s schema.Schema) *Relation {
	return &Relation{Schema: s}
}

// NewFromRows builds a relation from rows, each with multiplicity 1.
func NewFromRows(s schema.Schema, rows []types.Tuple) *Relation {
	r := New(s)
	for _, t := range rows {
		r.Add(t, 1)
	}
	return r
}

// Add appends a tuple with the given multiplicity. Non-positive
// multiplicities are dropped (0_K tuples are not in the relation).
func (r *Relation) Add(t types.Tuple, count int64) {
	if count <= 0 {
		return
	}
	r.Tuples = append(r.Tuples, t)
	r.Counts = append(r.Counts, count)
}

// Len returns the number of stored rows (distinct after Merge).
func (r *Relation) Len() int { return len(r.Tuples) }

// Size returns the total multiplicity.
func (r *Relation) Size() int64 {
	var n int64
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// Count returns the multiplicity of t (summing duplicates).
func (r *Relation) Count(t types.Tuple) int64 {
	key := t.Key()
	var n int64
	for i, u := range r.Tuples {
		if u.Key() == key {
			n += r.Counts[i]
		}
	}
	return n
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	out := New(r.Schema)
	out.Tuples = make([]types.Tuple, len(r.Tuples))
	out.Counts = make([]int64, len(r.Counts))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	copy(out.Counts, r.Counts)
	return out
}

// Merge combines duplicate tuples, summing multiplicities, and returns the
// receiver for chaining. Order of first occurrence is preserved.
func (r *Relation) Merge() *Relation {
	if len(r.Tuples) == 0 {
		return r
	}
	idx := make(map[string]int, len(r.Tuples))
	outT := r.Tuples[:0]
	outC := r.Counts[:0]
	for i, t := range r.Tuples {
		k := t.Key()
		if j, ok := idx[k]; ok {
			outC[j] += r.Counts[i]
			continue
		}
		idx[k] = len(outT)
		outT = append(outT, t)
		outC = append(outC, r.Counts[i])
	}
	r.Tuples = outT
	r.Counts = outC
	return r
}

// Sort orders rows lexicographically in place (presentation and stable
// comparison), keeping counts aligned with their tuples.
func (r *Relation) Sort() *Relation {
	sort.Stable(sortPairs{r})
	return r
}

// sortPairs sorts tuples and counts together.
type sortPairs struct{ r *Relation }

func (s sortPairs) Len() int { return len(s.r.Tuples) }
func (s sortPairs) Less(i, j int) bool {
	c := s.r.Tuples[i].Compare(s.r.Tuples[j])
	if c != 0 {
		return c < 0
	}
	return s.r.Counts[i] < s.r.Counts[j]
}
func (s sortPairs) Swap(i, j int) {
	s.r.Tuples[i], s.r.Tuples[j] = s.r.Tuples[j], s.r.Tuples[i]
	s.r.Counts[i], s.r.Counts[j] = s.r.Counts[j], s.r.Counts[i]
}

// Sorted returns a sorted copy with duplicates merged, for comparisons.
func (r *Relation) Sorted() *Relation {
	out := r.Clone().Merge()
	sort.Sort(sortPairs{out})
	return out
}

// Equal reports bag equality (same tuples with same multiplicities).
func (r *Relation) Equal(o *Relation) bool {
	a, b := r.Sorted(), o.Sorted()
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) || a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}

// String renders the relation as a small table.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(r.Schema.String())
	sb.WriteByte('\n')
	for i, t := range r.Tuples {
		fmt.Fprintf(&sb, "%s x%d\n", t, r.Counts[i])
	}
	return sb.String()
}

// DB is a named collection of bag relations.
type DB map[string]*Relation

// Names returns the table names in sorted order, for deterministic
// diagnostics.
func (db DB) Names() []string { return schema.SortedNames(db) }

// LookupFold resolves a table name the way the planner does (exact, then
// case-insensitive), keeping execution consistent with compilation.
func (db DB) LookupFold(name string) (*Relation, bool) {
	return schema.LookupFold(db, name)
}

// Schemas returns a catalog view of the database.
func (db DB) Schemas() map[string]schema.Schema {
	out := make(map[string]schema.Schema, len(db))
	for n, r := range db {
		out[strings.ToLower(n)] = r.Schema
	}
	return out
}
