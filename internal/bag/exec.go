package bag

import (
	"context"
	"fmt"
	"sort"

	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/schema"
	"github.com/audb/audb/internal/types"
)

// Exec evaluates an RA_agg plan over a deterministic bag database and
// returns the result relation with duplicates merged. Cancellation of ctx
// aborts the evaluation promptly with ctx.Err(); a nil ctx is treated as
// context.Background().
func Exec(ctx context.Context, n ra.Node, db DB) (*Relation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cat := ra.CatalogMap(db.Schemas())
	return exec(ctx, n, db, cat)
}

func exec(ctx context.Context, n ra.Node, db DB, cat ra.Catalog) (*Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ra.IsNil(n) {
		// A nil child reached through a nested operator (e.g. a
		// hand-built plan with a missing input).
		return nil, fmt.Errorf("bag: nil plan node")
	}
	switch t := n.(type) {
	case *ra.Scan:
		r, ok := db.LookupFold(t.Table)
		if !ok {
			return nil, schema.UnknownTable("bag", t.Table, db.Names())
		}
		return r, nil
	case *ra.Select:
		return execSelect(ctx, t, db, cat)
	case *ra.Project:
		return execProject(ctx, t, db, cat)
	case *ra.Join:
		return execJoin(ctx, t, db, cat)
	case *ra.Union:
		return execUnion(ctx, t, db, cat)
	case *ra.Diff:
		return execDiff(ctx, t, db, cat)
	case *ra.Distinct:
		return execDistinct(ctx, t, db, cat)
	case *ra.Agg:
		return execAgg(ctx, t, db, cat)
	case *ra.OrderBy:
		in, err := exec(ctx, t.Child, db, cat)
		if err != nil {
			return nil, err
		}
		out := in.Clone()
		sortByKeys(out, t.Keys, t.Desc)
		return out, nil
	case *ra.Limit:
		in, err := exec(ctx, t.Child, db, cat)
		if err != nil {
			return nil, err
		}
		out := in.Clone().Merge()
		if t.N < len(out.Tuples) {
			out.Tuples = out.Tuples[:t.N]
			out.Counts = out.Counts[:t.N]
		}
		return out, nil
	}
	return nil, fmt.Errorf("bag: unknown node %T", n)
}

func sortByKeys(r *Relation, keys []int, desc bool) {
	// Sort tuples and counts in tandem via an index permutation.
	idx := make([]int, len(r.Tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ta, tb := r.Tuples[idx[a]], r.Tuples[idx[b]]
		for _, k := range keys {
			if c := types.Compare(ta[k], tb[k]); c != 0 {
				if desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	nt := make([]types.Tuple, len(idx))
	nc := make([]int64, len(idx))
	for i, j := range idx {
		nt[i], nc[i] = r.Tuples[j], r.Counts[j]
	}
	r.Tuples, r.Counts = nt, nc
}

func execSelect(ctx context.Context, t *ra.Select, db DB, cat ra.Catalog) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat)
	if err != nil {
		return nil, err
	}
	out := New(in.Schema)
	p := ctxpoll.New(ctx)
	for i, tup := range in.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		v, err := t.Pred.Eval(tup)
		if err != nil {
			return nil, fmt.Errorf("bag: selection: %w", err)
		}
		if v.AsBool() {
			out.Add(tup, in.Counts[i])
		}
	}
	return out, nil
}

func execProject(ctx context.Context, t *ra.Project, db DB, cat ra.Catalog) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat)
	if err != nil {
		return nil, err
	}
	attrs := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		attrs[i] = c.Name
	}
	out := New(schema.Schema{Attrs: attrs})
	p := ctxpoll.New(ctx)
	for i, tup := range in.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		row := make(types.Tuple, len(t.Cols))
		for j, c := range t.Cols {
			v, err := c.E.Eval(tup)
			if err != nil {
				return nil, fmt.Errorf("bag: projection %s: %w", c.Name, err)
			}
			row[j] = v
		}
		out.Add(row, in.Counts[i])
	}
	return out.Merge(), nil
}

func execJoin(ctx context.Context, t *ra.Join, db DB, cat ra.Catalog) (*Relation, error) {
	l, err := exec(ctx, t.Left, db, cat)
	if err != nil {
		return nil, err
	}
	r, err := exec(ctx, t.Right, db, cat)
	if err != nil {
		return nil, err
	}
	out := New(l.Schema.Concat(r.Schema))
	split := l.Schema.Arity()

	// Extract hashable equi-join conjuncts from the condition.
	var leftCols, rightCols []int
	var residual []expr.Expr
	if t.Cond != nil {
		for _, c := range expr.Conjuncts(t.Cond) {
			if li, ri, ok := expr.EquiPair(c, split); ok {
				leftCols = append(leftCols, li)
				rightCols = append(rightCols, ri)
			} else {
				residual = append(residual, c)
			}
		}
	}

	p := ctxpoll.New(ctx)
	emit := func(lt types.Tuple, lc int64, rt types.Tuple, rc int64) error {
		if err := p.Due(); err != nil {
			return err
		}
		joined := lt.Concat(rt)
		for _, p := range residual {
			v, err := p.Eval(joined)
			if err != nil {
				return fmt.Errorf("bag: join condition: %w", err)
			}
			if !v.AsBool() {
				return nil
			}
		}
		out.Add(joined, lc*rc)
		return nil
	}

	if len(leftCols) > 0 {
		// Hash join on the equality columns.
		index := make(map[string][]int, r.Len())
		for i, rt := range r.Tuples {
			if err := p.Due(); err != nil {
				return nil, err
			}
			k := rt.KeyOn(rightCols)
			index[k] = append(index[k], i)
		}
		for i, lt := range l.Tuples {
			if err := p.Due(); err != nil {
				return nil, err
			}
			for _, j := range index[lt.KeyOn(leftCols)] {
				if err := emit(lt, l.Counts[i], r.Tuples[j], r.Counts[j]); err != nil {
					return nil, err
				}
			}
		}
	} else {
		// Nested loop (cross product or pure theta join).
		for i, lt := range l.Tuples {
			for j, rt := range r.Tuples {
				if err := p.Due(); err != nil {
					return nil, err
				}
				if err := emit(lt, l.Counts[i], rt, r.Counts[j]); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

func execUnion(ctx context.Context, t *ra.Union, db DB, cat ra.Catalog) (*Relation, error) {
	l, err := exec(ctx, t.Left, db, cat)
	if err != nil {
		return nil, err
	}
	r, err := exec(ctx, t.Right, db, cat)
	if err != nil {
		return nil, err
	}
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("bag: union arity mismatch %s vs %s", l.Schema, r.Schema)
	}
	out := New(l.Schema)
	p := ctxpoll.New(ctx)
	for i, tup := range l.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		out.Add(tup, l.Counts[i])
	}
	for i, tup := range r.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		out.Add(tup, r.Counts[i])
	}
	return out.Merge(), nil
}

func execDiff(ctx context.Context, t *ra.Diff, db DB, cat ra.Catalog) (*Relation, error) {
	l, err := exec(ctx, t.Left, db, cat)
	if err != nil {
		return nil, err
	}
	r, err := exec(ctx, t.Right, db, cat)
	if err != nil {
		return nil, err
	}
	if l.Schema.Arity() != r.Schema.Arity() {
		return nil, fmt.Errorf("bag: difference arity mismatch %s vs %s", l.Schema, r.Schema)
	}
	lm := l.Clone().Merge()
	p := ctxpoll.New(ctx)
	sub := make(map[string]int64, r.Len())
	for i, tup := range r.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		sub[tup.Key()] += r.Counts[i]
	}
	out := New(l.Schema)
	for i, tup := range lm.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		c := lm.Counts[i] - sub[tup.Key()]
		if c > 0 {
			out.Add(tup, c) // bag monus: max(0, l - r)
		}
	}
	return out, nil
}

func execDistinct(ctx context.Context, t *ra.Distinct, db DB, cat ra.Catalog) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat)
	if err != nil {
		return nil, err
	}
	out := in.Clone().Merge()
	for i := range out.Counts {
		out.Counts[i] = 1 // δ_N
	}
	return out, nil
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	sum      types.Value
	count    int64
	min, max types.Value
	distinct map[string]types.Value
	sawRow   bool
}

func newAggState(distinct bool) *aggState {
	st := &aggState{
		sum: types.Int(0),
		min: types.PosInf(),
		max: types.NegInf(),
	}
	if distinct {
		st.distinct = map[string]types.Value{}
	}
	return st
}

func (st *aggState) add(v types.Value, mult int64) error {
	st.sawRow = true
	if st.distinct != nil {
		st.distinct[string(v.AppendKey(nil))] = v
		return nil
	}
	return st.accumulate(v, mult)
}

func (st *aggState) accumulate(v types.Value, mult int64) error {
	if v.IsNull() {
		return nil // SQL-style: nulls do not contribute
	}
	st.count += mult
	if v.IsNumeric() || v.IsInf() {
		contrib, err := types.Mul(v, types.Int(mult))
		if err != nil {
			return err
		}
		s, err := types.Add(st.sum, contrib)
		if err != nil {
			return err
		}
		st.sum = s
	}
	st.min = types.Min(st.min, v)
	st.max = types.Max(st.max, v)
	return nil
}

func (st *aggState) finalize(fn ra.AggFn) (types.Value, error) {
	if st.distinct != nil {
		// Fold the distinct set with multiplicity one each.
		keys := make([]string, 0, len(st.distinct))
		for k := range st.distinct {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		folded := newAggState(false)
		for _, k := range keys {
			if err := folded.accumulate(st.distinct[k], 1); err != nil {
				return types.Null(), err
			}
		}
		folded.sawRow = st.sawRow
		return folded.finalize(fn)
	}
	switch fn {
	case ra.AggCount:
		return types.Int(st.count), nil
	case ra.AggSum:
		// Monoid semantics: the sum over the empty bag is 0_M. This
		// matches the paper's aggregation monoids (Section 9.1) and keeps
		// the deterministic engine aligned with AU-DB evaluation.
		return st.sum, nil
	case ra.AggMin:
		return st.min, nil
	case ra.AggMax:
		return st.max, nil
	case ra.AggAvg:
		if st.count == 0 {
			return types.Float(0), nil
		}
		return types.Div(st.sum, types.Int(st.count))
	}
	return types.Null(), fmt.Errorf("bag: unknown aggregate %v", fn)
}

func execAgg(ctx context.Context, t *ra.Agg, db DB, cat ra.Catalog) (*Relation, error) {
	in, err := exec(ctx, t.Child, db, cat)
	if err != nil {
		return nil, err
	}
	outSchema, err := ra.InferSchema(t, cat)
	if err != nil {
		return nil, err
	}

	type group struct {
		key    types.Tuple
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string

	getGroup := func(tup types.Tuple) *group {
		key := tup.Project(t.GroupBy)
		k := key.Key()
		g, ok := groups[k]
		if !ok {
			g = &group{key: key}
			for _, a := range t.Aggs {
				g.states = append(g.states, newAggState(a.Distinct))
			}
			groups[k] = g
			order = append(order, k)
		}
		return g
	}

	p := ctxpoll.New(ctx)
	for i, tup := range in.Tuples {
		if err := p.Due(); err != nil {
			return nil, err
		}
		g := getGroup(tup)
		for j, a := range t.Aggs {
			var v types.Value
			if a.Arg == nil {
				// count(*): every row contributes its multiplicity.
				v = types.Int(1)
			} else {
				v, err = a.Arg.Eval(tup)
				if err != nil {
					return nil, fmt.Errorf("bag: aggregate %s: %w", a.Name, err)
				}
			}
			if err := g.states[j].add(v, in.Counts[i]); err != nil {
				return nil, fmt.Errorf("bag: aggregate %s: %w", a.Name, err)
			}
		}
	}

	out := New(outSchema)
	if len(t.GroupBy) == 0 && len(order) == 0 {
		// Aggregation without group-by over an empty input still yields
		// one row (Definition 27 / SQL).
		row := make(types.Tuple, len(t.Aggs))
		for j, a := range t.Aggs {
			v, err := newAggState(false).finalize(a.Fn)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		out.Add(row, 1)
		return out, nil
	}
	for _, k := range order {
		g := groups[k]
		row := make(types.Tuple, 0, len(t.GroupBy)+len(t.Aggs))
		row = append(row, g.key...)
		for j, a := range t.Aggs {
			v, err := g.states[j].finalize(a.Fn)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Add(row, 1)
	}
	return out.Merge(), nil
}
