package server_test

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/server"
	"github.com/audb/audb/internal/testutil"
	"github.com/audb/audb/internal/wire"
)

// TestTraceRequest: a Trace request runs the query and answers with the
// rendered span tree — the server's admission wait and wire-encode
// spans framing the database's parse/optimize/execute lifecycle.
func TestTraceRequest(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Trace{ID: 1, SQL: `SELECT x FROM t WHERE y < 2`})
	tr, ok := rc.read().(wire.TraceResult)
	if !ok || tr.ID != 1 {
		t.Fatalf("expected TraceResult{ID:1}, got %+v", tr)
	}
	for _, span := range []string{"request", "admission.wait", "query", "parse", "execute", "wire.encode", "bytes="} {
		if !strings.Contains(tr.Text, span) {
			t.Errorf("trace missing %q:\n%s", span, tr.Text)
		}
	}
	// A bad query answers with a normal Error frame.
	rc.send(wire.Trace{ID: 2, SQL: `SELECT nope FROM t`})
	rc.wantError(2, wire.CodeSQL)
	// Trace refuses the uninstrumented engines like ExplainAnalyze does.
	rc.send(wire.Trace{ID: 3, SQL: `SELECT x FROM t`, Opts: wire.ExecOptions{Engine: 2}})
	rc.wantError(3, wire.CodeSQL)
}

// TestServerStatsRequest: ServerStats renders both registries and the
// sampled request traces; the counters reflect the session's activity.
func TestServerStatsRequest(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{TraceSample: 1})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Query{ID: 1, SQL: `SELECT x FROM t`})
	if _, ok := rc.read().(wire.Result); !ok {
		t.Fatal("query failed")
	}
	rc.send(wire.Query{ID: 2, SQL: `SELECT broken FROM t`})
	rc.wantError(2, wire.CodeSQL)

	rc.send(wire.ServerStats{ID: 3})
	st, ok := rc.read().(wire.ServerStatsResult)
	if !ok || st.ID != 3 {
		t.Fatalf("expected ServerStatsResult{ID:3}, got %+v", st)
	}
	for _, want := range []string{
		"# server",
		"audbd_connections_active 1",
		"audbd_sessions_total 1",
		"audbd_requests_total",
		`audbd_errors_total{code="sql"} 1`,
		"audbd_bytes_in_total",
		"audbd_bytes_out_total",
		"# database",
		`audb_queries_total{engine="native"}`,
		"# recent traces",
		"admission.wait",
	} {
		if !strings.Contains(st.Text, want) {
			t.Errorf("server stats missing %q:\n%s", want, st.Text)
		}
	}
}

// TestServerMetricsRegistry: the registry is live without any wire
// request — the path the HTTP /metrics endpoint uses — and byte
// counters account both directions of the conversation.
func TestServerMetricsRegistry(t *testing.T) {
	testutil.NoLeaks(t)
	addr, srv := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Query{ID: 1, SQL: `SELECT x FROM t`})
	if _, ok := rc.read().(wire.Result); !ok {
		t.Fatal("query failed")
	}
	var sb strings.Builder
	srv.Metrics().WritePrometheus(&sb)
	prom := sb.String()
	for _, want := range []string{
		"# TYPE audbd_sessions_total counter",
		"audbd_sessions_total 1",
		"audbd_queries_in_flight 0",
		"audbd_queue_depth 0",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q:\n%s", want, prom)
		}
	}
	snap := srv.Metrics().Snapshot()
	if !strings.Contains(snap, "audbd_bytes_in_total") || !strings.Contains(snap, "audbd_bytes_out_total") {
		t.Fatalf("byte counters missing:\n%s", snap)
	}
}

// TestTraceSamplingOff: TraceSample < 0 disables the sampled ring —
// ordinary queries record nothing — but explicit Trace requests still
// answer with a full span tree.
func TestTraceSamplingOff(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{TraceSample: -1})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Query{ID: 1, SQL: `SELECT x FROM t`})
	if _, ok := rc.read().(wire.Result); !ok {
		t.Fatal("query failed")
	}
	rc.send(wire.ServerStats{ID: 2})
	st, ok := rc.read().(wire.ServerStatsResult)
	if !ok {
		t.Fatal("expected ServerStatsResult")
	}
	if strings.Contains(st.Text, "# recent traces") {
		t.Fatalf("sampling disabled but traces recorded:\n%s", st.Text)
	}
	rc.send(wire.Trace{ID: 3, SQL: `SELECT x FROM t`})
	tr, ok := rc.read().(wire.TraceResult)
	if !ok || !strings.Contains(tr.Text, "parse") {
		t.Fatalf("explicit trace broken with sampling off: %+v", tr)
	}
}

// TestCopyTupleCounter: COPY ingestion moves the tuple counter.
func TestCopyTupleCounter(t *testing.T) {
	testutil.NoLeaks(t)
	addr, srv := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.CopyBegin{ID: 1, Table: "u", Cols: []string{"x"}})
	rc.send(wire.CopyData{ID: 1, Tuples: tuples(1, 7)})
	rc.send(wire.CopyEnd{ID: 1})
	if ok, isOK := rc.read().(wire.CopyOK); !isOK || ok.Rows != 7 {
		t.Fatalf("CopyOK = %+v", ok)
	}
	if snap := srv.Metrics().Snapshot(); !strings.Contains(snap, "audbd_copy_tuples_total 7") {
		t.Fatalf("copy tuple counter missing:\n%s", snap)
	}
	// The stream itself is traced (first request sampled at 1-in-16):
	// one span per COPY, table and tuple count attached.
	text := srv.StatsText()
	for _, want := range []string{"copy", "table=u", "tuples=7"} {
		if !strings.Contains(text, want) {
			t.Fatalf("StatsText missing %q:\n%s", want, text)
		}
	}
}
