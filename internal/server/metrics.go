package server

import (
	"fmt"
	"strings"

	"github.com/audb/audb/internal/obs"
)

// serverMetrics holds audbd's pre-resolved metric handles (audbd_*
// namespace; the embedded database registers its own audb_* registry).
// Handles are resolved once at construction so the per-request path is
// pure atomic updates.
type serverMetrics struct {
	reg         *obs.Registry
	connections *obs.Gauge      // live sessions
	sessions    *obs.Counter    // sessions ever accepted
	requests    *obs.Counter    // requests dispatched (all message kinds)
	errors      *obs.CounterVec // error responses, by wire code
	queueDepth  *obs.Gauge      // requests waiting for an execution slot
	queueWait   *obs.Histogram  // admission-queue wait of delayed requests
	copyTuples  *obs.Counter    // tuples ingested over COPY
	bytesIn     *obs.Counter    // wire bytes read (frame headers included)
	bytesOut    *obs.Counter    // wire bytes written
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg}
	m.connections = reg.Gauge("audbd_connections_active", "live client sessions")
	m.sessions = reg.Counter("audbd_sessions_total", "client sessions ever accepted")
	m.requests = reg.Counter("audbd_requests_total", "requests dispatched to the executor")
	m.errors = reg.CounterVec("audbd_errors_total", "error responses, by wire code", "code")
	m.queueDepth = reg.Gauge("audbd_queue_depth", "requests waiting for an execution slot")
	m.queueWait = reg.Histogram("audbd_queue_wait_seconds", "admission-queue wait of requests that found no free slot")
	m.copyTuples = reg.Counter("audbd_copy_tuples_total", "tuples ingested over COPY")
	m.bytesIn = reg.Counter("audbd_bytes_in_total", "wire bytes read from clients")
	m.bytesOut = reg.Counter("audbd_bytes_out_total", "wire bytes written to clients")
	reg.GaugeFunc("audbd_queries_in_flight", "queries executing right now", func() int64 {
		return s.inFlight.Load()
	})
	return m
}

// Metrics returns the server's own registry (audbd_* series: sessions,
// admission queue, errors by code, wire byte totals). Serve it together
// with the database's registry: obs.Handler(srv.Metrics(), db.Metrics()).
func (s *Server) Metrics() *obs.Registry { return s.met.reg }

// StatsText renders the server and database metric snapshots plus the
// most recent sampled request traces — the \server answer.
func (s *Server) StatsText() string {
	var b strings.Builder
	b.WriteString("# server\n")
	b.WriteString(s.met.reg.Snapshot())
	b.WriteString("\n# database\n")
	b.WriteString(s.db.Metrics().Snapshot())
	if traces := s.rec.Traces(); len(traces) > 0 {
		fmt.Fprintf(&b, "\n# recent traces (%d kept of %d sampled)\n", len(traces), s.rec.Total())
		for _, t := range traces {
			b.WriteString(t.String())
		}
	}
	return b.String()
}
