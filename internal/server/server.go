// Package server implements audbd, the AU-DB network service: a TCP
// server speaking the internal/wire protocol, with one session per
// connection backed by the root package's QueryContext/Prepare API.
//
// The server adds the concerns that the in-process API leaves to the
// embedding program:
//
//   - admission control: at most Config.MaxConcurrency queries execute
//     at once across all connections; excess requests wait in a bounded
//     queue and fail with CodeQueueTimeout after Config.QueueTimeout.
//   - per-query deadlines: ExecOptions.TimeoutMS (capped by
//     Config.MaxQueryTime) bounds each execution server-side.
//   - cancellation: a Cancel frame — or the client disconnecting — aborts
//     the in-flight query through its context within milliseconds.
//   - graceful shutdown: Shutdown stops accepting, lets in-flight
//     queries finish, refuses queued requests with CodeShutdown, and
//     force-cancels stragglers when its context expires.
//
// cmd/audbd is the thin flag-parsing main around this package; tests and
// the bench harness embed the server directly.
package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/obs"
)

// ErrServerClosed is returned by Serve after Shutdown closes the
// listener (mirroring net/http.ErrServerClosed).
var ErrServerClosed = errors.New("server: closed")

// Config tunes a Server. The zero value picks sensible defaults.
type Config struct {
	// Name identifies the server in the HelloOK handshake and defaults
	// to "audbd".
	Name string
	// MaxConcurrency caps the number of queries executing at once across
	// all connections. 0 means one per CPU.
	MaxConcurrency int
	// QueueTimeout bounds how long an admitted request may wait for an
	// execution slot before failing with CodeQueueTimeout. 0 means 5s.
	QueueTimeout time.Duration
	// MaxQueryTime caps every query's execution time regardless of the
	// client's ExecOptions.TimeoutMS. 0 means no server-side cap.
	MaxQueryTime time.Duration
	// MaxFrame caps incoming frame payloads. 0 means wire.DefaultMaxFrame.
	MaxFrame int
	// Logf receives connection-level log lines; nil discards them.
	Logf func(format string, args ...any)
	// TraceSample controls request-trace sampling: one request in every
	// TraceSample is traced into the ring the ServerStats request
	// reports. 0 means 16; negative disables sampling (explicit Trace
	// requests are still always traced and recorded).
	TraceSample int
}

// Server serves the wire protocol over a listener. Create with New,
// start with Serve, stop with Shutdown.
type Server struct {
	db  *audb.Database
	cfg Config
	sem chan struct{} // admission slots, MaxConcurrency capacity

	baseCtx   context.Context // parent of every request context
	cancelAll context.CancelFunc

	mu       sync.Mutex
	lis      net.Listener
	sessions map[*session]struct{}
	draining bool

	wg       sync.WaitGroup // one per live session
	inFlight atomic.Int64   // queries executing right now

	met *serverMetrics
	rec *obs.Recorder // sampled request traces; nil when sampling is off
}

// New wraps db in a server. The database may be shared with in-process
// callers; sessions go through the same concurrency-safe API.
func New(db *audb.Database, cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "audbd"
	}
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:        db,
		cfg:       cfg,
		sem:       make(chan struct{}, cfg.MaxConcurrency),
		baseCtx:   ctx,
		cancelAll: cancel,
		sessions:  make(map[*session]struct{}),
	}
	s.met = newServerMetrics(s)
	if cfg.TraceSample >= 0 {
		every := cfg.TraceSample
		if every == 0 {
			every = 16
		}
		s.rec = obs.NewRecorder(0, every)
	}
	return s
}

// DB returns the served database.
func (s *Server) DB() *audb.Database { return s.db }

// InFlight reports how many queries are executing right now (admitted,
// not queued). Exposed for tests and the bench harness.
func (s *Server) InFlight() int { return int(s.inFlight.Load()) }

// Serve accepts connections on lis until Shutdown or a fatal accept
// error. It returns ErrServerClosed after Shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		lis.Close()
		return ErrServerClosed
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		sess := newSession(s, conn)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.sessions[sess] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.met.sessions.Add(1)
		s.met.connections.Inc()
		go func() {
			defer s.wg.Done()
			defer s.met.connections.Dec()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

// Shutdown stops the server: it closes the listener (refusing new
// connections), signals every session to drain — in-flight queries
// finish, queued requests are refused with CodeShutdown — and waits for
// all sessions to exit. If ctx expires first, in-flight queries are
// cancelled through their contexts, connections are force-closed, and
// Shutdown returns ctx.Err() once the sessions have unwound.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.lis != nil {
		s.lis.Close()
	}
	for sess := range s.sessions {
		sess.startDrain()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Drain deadline expired: cancel every request context and break the
	// connections, then wait for the (now fast) unwind so callers can
	// rely on no goroutines surviving Shutdown.
	s.cancelAll()
	s.mu.Lock()
	for sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// errQueueTimeout marks an admission-queue timeout; sessions map it to
// wire.CodeQueueTimeout.
var errQueueTimeout = errors.New("server: queue timeout waiting for an execution slot")

// acquire takes an execution slot, waiting up to QueueTimeout. ctx is
// the request context: cancellation while queued gives ctx.Err().
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	s.met.queueDepth.Inc()
	start := time.Now()
	defer func() {
		s.met.queueDepth.Dec()
		s.met.queueWait.Observe(time.Since(start))
	}()
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return errQueueTimeout
	}
}

func (s *Server) release() { <-s.sem }
