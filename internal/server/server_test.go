package server_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/rangeval"
	"github.com/audb/audb/internal/server"
	"github.com/audb/audb/internal/testutil"
	"github.com/audb/audb/internal/types"
	"github.com/audb/audb/internal/wire"
)

// rawConn is a hand-driven protocol client for exercising the server's
// error paths below what the client package would ever send.
type rawConn struct {
	t    *testing.T
	conn net.Conn
	r    *wire.Reader
	w    *wire.Writer
}

func testDB(t testing.TB) *audb.Database {
	tbl := audb.NewUncertainTable("t", "x", "y")
	for i := 0; i < 8; i++ {
		tbl.AddCertainRow(audb.Int(int64(i)), audb.Int(int64(i%3)))
	}
	return audb.New().Add(tbl)
}

func startServer(t *testing.T, cfg server.Config) (string, *server.Server) {
	t.Helper()
	srv := server.New(testDB(t), cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-serveErr; err != nil && !errors.Is(err, server.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	})
	return lis.Addr().String(), srv
}

// dialRaw connects without the handshake.
func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return &rawConn{t: t, conn: conn, r: wire.NewReader(conn), w: wire.NewWriter(conn)}
}

// hello performs a valid handshake.
func (rc *rawConn) hello() wire.HelloOK {
	rc.t.Helper()
	rc.send(wire.Hello{Version: wire.Version, Client: "rawtest"})
	ok, isOK := rc.read().(wire.HelloOK)
	if !isOK {
		rc.t.Fatal("handshake refused")
	}
	return ok
}

func (rc *rawConn) send(m wire.Msg) {
	rc.t.Helper()
	if err := rc.w.Write(m); err != nil {
		rc.t.Fatalf("write %s: %v", wire.TypeName(wire.Type(m)), err)
	}
}

func (rc *rawConn) read() wire.Msg {
	rc.t.Helper()
	m, err := rc.r.Read()
	if err != nil {
		rc.t.Fatalf("read: %v", err)
	}
	return m
}

// wantError reads one frame and asserts it is an Error with the code.
func (rc *rawConn) wantError(id uint64, code string) wire.Error {
	rc.t.Helper()
	e, isErr := rc.read().(wire.Error)
	if !isErr {
		rc.t.Fatal("expected an Error frame")
	}
	if e.ID != id || e.Code != code {
		rc.t.Fatalf("Error{ID:%d Code:%q Message:%q}, want id %d code %q", e.ID, e.Code, e.Message, id, code)
	}
	return e
}

// expectClosed asserts the server hung up.
func (rc *rawConn) expectClosed() {
	rc.t.Helper()
	if _, err := rc.r.Read(); err == nil {
		rc.t.Fatal("connection still open, want close")
	}
}

// TestHandshakeVersionMismatch: an unsupported protocol version is
// refused with a proto error and the connection closes.
func TestHandshakeVersionMismatch(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.send(wire.Hello{Version: 999, Client: "future"})
	rc.wantError(0, wire.CodeProto)
	rc.expectClosed()
}

// TestHandshakeWrongFirstFrame: anything but Hello first is refused.
func TestHandshakeWrongFirstFrame(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.send(wire.Ping{ID: 1})
	rc.wantError(0, wire.CodeProto)
	rc.expectClosed()
}

// TestUnexpectedMessagePoisons: a response-typed frame sent as a
// request is a protocol error that ends the session.
func TestUnexpectedMessagePoisons(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Pong{ID: 1})
	rc.wantError(0, wire.CodeProto)
	rc.expectClosed()
}

// TestCopyProtocolErrors: stray CopyData/CopyEnd, double CopyBegin and
// arity mismatches all answer with precise errors, and the session
// recovers for subsequent requests.
func TestCopyProtocolErrors(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()

	// CopyData with no open stream.
	rc.send(wire.CopyData{ID: 1})
	rc.wantError(1, wire.CodeProto)
	// CopyEnd with no open stream.
	rc.send(wire.CopyEnd{ID: 2})
	rc.wantError(2, wire.CodeProto)
	// CopyBegin without columns.
	rc.send(wire.CopyBegin{ID: 3, Table: "u"})
	rc.wantError(3, wire.CodeProto)

	// Open a stream, then a second CopyBegin is refused while the first
	// stays open.
	rc.send(wire.CopyBegin{ID: 4, Table: "u", Cols: []string{"x"}})
	rc.send(wire.CopyBegin{ID: 5, Table: "v", Cols: []string{"x"}})
	rc.wantError(5, wire.CodeProto)

	// An arity-mismatched chunk fails the stream immediately...
	rc.send(wire.CopyData{ID: 4, Tuples: tuples(2, 3)})
	rc.wantError(4, wire.CodeProto)
	// ...later chunks for the failed stream are dropped silently, and
	// CopyEnd clears the state without a second response.
	rc.send(wire.CopyData{ID: 4, Tuples: tuples(1, 1)})
	rc.send(wire.CopyEnd{ID: 4})

	// The session is healthy again: a fresh single-column copy commits.
	rc.send(wire.CopyBegin{ID: 6, Table: "u", Cols: []string{"x"}})
	rc.send(wire.CopyData{ID: 6, Tuples: tuples(1, 5)})
	rc.send(wire.CopyEnd{ID: 6})
	ok, isOK := rc.read().(wire.CopyOK)
	if !isOK || ok.ID != 6 || ok.Rows != 5 {
		t.Fatalf("CopyOK = %+v", ok)
	}
	rc.send(wire.Ping{ID: 7})
	if p, isPong := rc.read().(wire.Pong); !isPong || p.ID != 7 {
		t.Fatal("ping after copy recovery failed")
	}
}

// tuples builds n certain tuples of the given arity.
func tuples(arity, n int) []core.Tuple {
	out := make([]core.Tuple, n)
	for i := range out {
		vals := make(rangeval.Tuple, arity)
		for c := range vals {
			vals[c] = rangeval.Certain(types.Int(int64(i + c)))
		}
		out[i] = core.Tuple{Vals: vals, M: core.One}
	}
	return out
}

// TestUnknownStatementHandle: ExecStmt/CloseStmt with a stale handle.
func TestUnknownStatementHandle(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.ExecStmt{ID: 1, Stmt: 42})
	rc.wantError(1, wire.CodeUnknownStmt)
	rc.send(wire.CloseStmt{ID: 2, Stmt: 42})
	rc.wantError(2, wire.CodeUnknownStmt)
}

// TestCancelUnknownID: Cancel for an unknown or finished request is
// ignored (fire-and-forget), not an error.
func TestCancelUnknownID(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	rc.send(wire.Cancel{ID: 999})
	rc.send(wire.Ping{ID: 1})
	if p, ok := rc.read().(wire.Pong); !ok || p.ID != 1 {
		t.Fatal("session died on a stray Cancel")
	}
}

// TestCancelBeforeExecution: a Cancel that lands while the request is
// still queued makes it fail with canceled instead of running.
func TestCancelBeforeExecution(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{})
	rc := dialRaw(t, addr)
	rc.hello()
	// Pipeline: a query and its own cancellation back to back. The
	// executor may or may not have started the query when the Cancel
	// arrives; either way the response must be canceled or the result —
	// never a hang. Use a tiny query so the race is harmless.
	rc.send(wire.Query{ID: 1, SQL: `SELECT x FROM t WHERE x < 0`})
	rc.send(wire.Cancel{ID: 1})
	m := rc.read()
	switch m := m.(type) {
	case wire.Result:
	case wire.Error:
		if m.Code != wire.CodeCanceled {
			t.Fatalf("Error code %q, want canceled", m.Code)
		}
	default:
		t.Fatalf("unexpected %s", wire.TypeName(wire.Type(m)))
	}
}

// TestServeAfterShutdown: Serve on a shut-down server refuses.
func TestServeAfterShutdown(t *testing.T) {
	testutil.NoLeaks(t)
	srv := server.New(testDB(t), server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve after Shutdown = %v", err)
	}
}

// TestMaxFrameEnforced: a frame above the configured cap kills the
// session instead of allocating.
func TestMaxFrameEnforced(t *testing.T) {
	testutil.NoLeaks(t)
	addr, _ := startServer(t, server.Config{MaxFrame: 64})
	rc := dialRaw(t, addr)
	rc.send(wire.Hello{Version: wire.Version, Client: "small"})
	ok, isOK := rc.read().(wire.HelloOK)
	if !isOK {
		t.Fatalf("handshake: %+v", ok)
	}
	rc.send(wire.Query{ID: 1, SQL: string(make([]byte, 1024))})
	rc.expectClosed()
}
