package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/ctxpoll"
	"github.com/audb/audb/internal/obs"
	"github.com/audb/audb/internal/wire"
)

// handshakeTimeout bounds how long a fresh connection may take to send
// Hello before the server hangs up.
const handshakeTimeout = 10 * time.Second

// reqQueueDepth is the per-session request buffer between the socket
// reader and the executor. Deep enough for a pipelined COPY stream; when
// it fills, TCP backpressure slows the client down.
const reqQueueDepth = 64

// reqState tracks one request from the moment the reader accepts it to
// the moment the executor answers it, so a Cancel frame can reach the
// request whether it is queued or executing.
type reqState struct {
	cancel    context.CancelFunc // set once the executor starts the request
	cancelled bool               // set by a Cancel frame or disconnect
}

// session is one client connection: a reader goroutine that demuxes
// Cancel frames out-of-band, and the executor (the run goroutine) that
// handles requests serially and owns all writes.
type session struct {
	srv  *Server
	conn net.Conn
	ctx  context.Context // derived from Server.baseCtx; forced shutdown cancels it
	r    *wire.Reader
	w    *wire.Writer

	drain     chan struct{} // closed by Shutdown: finish in-flight, refuse the rest
	drainOnce sync.Once

	mu      sync.Mutex
	pending map[uint64]*reqState

	stmts    map[uint64]*audb.Stmt
	nextStmt uint64
	cp       *copyState
	werr     error // first write error; poisons the session
}

// copyState is an open COPY stream. Rows stream into a TableLoader, so
// the table materializes directly in its final storage representation
// with statistics collected in the same pass — CopyEnd publishes a fully
// analyzed table without a second scan.
type copyState struct {
	id     uint64
	table  string
	ld     *audb.TableLoader
	ctx    context.Context
	cancel context.CancelFunc
	poll   *ctxpoll.Poll
	failed bool
	sp     *obs.Span // sampled COPY-stream span, nil when unsampled
}

func newSession(s *Server, conn net.Conn) *session {
	se := &session{
		srv:     s,
		conn:    conn,
		ctx:     s.baseCtx,
		r:       wire.NewReader(conn),
		w:       wire.NewWriter(conn),
		drain:   make(chan struct{}),
		pending: make(map[uint64]*reqState),
		stmts:   make(map[uint64]*audb.Stmt),
	}
	if s.cfg.MaxFrame > 0 {
		se.r.SetMaxFrame(s.cfg.MaxFrame)
	}
	se.r.SetByteCounter(s.met.bytesIn)
	se.w.SetByteCounter(s.met.bytesOut)
	return se
}

// startDrain signals the session to finish its in-flight request and
// close. Idempotent.
func (se *session) startDrain() { se.drainOnce.Do(func() { close(se.drain) }) }

// run is the session body: handshake, then the reader/executor pair.
// It returns when the connection is done; the caller removes the
// session from the server.
func (se *session) run() {
	defer se.conn.Close()
	if !se.handshake() {
		return
	}
	reqCh := make(chan wire.Msg, reqQueueDepth)
	go se.readLoop(reqCh)
	se.execLoop(reqCh)
}

// handshake reads Hello under a deadline and answers HelloOK.
func (se *session) handshake() bool {
	se.conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	m, err := se.r.Read()
	if err != nil {
		se.srv.logf("audbd: %s: handshake: %v", se.conn.RemoteAddr(), err)
		return false
	}
	se.conn.SetReadDeadline(time.Time{})
	hello, ok := m.(wire.Hello)
	if !ok {
		se.send(wire.Error{Code: wire.CodeProto, Message: fmt.Sprintf("expected Hello, got %s", wire.TypeName(wire.Type(m)))})
		return false
	}
	if hello.Version != wire.Version {
		se.send(wire.Error{Code: wire.CodeProto, Message: fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, wire.Version)})
		return false
	}
	se.srv.logf("audbd: %s: connected (%s)", se.conn.RemoteAddr(), hello.Client)
	return se.send(wire.HelloOK{Version: wire.Version, Server: se.srv.cfg.Name, Tables: se.srv.db.Tables()})
}

// readLoop stays on the socket for the whole session so Cancel frames
// and disconnects are seen even while a query executes. Requests are
// handed to the executor; when the connection breaks, every pending
// request is cancelled (freeing the executor within milliseconds) and
// the channel is closed.
func (se *session) readLoop(reqCh chan<- wire.Msg) {
	defer close(reqCh)
	for {
		m, err := se.r.Read()
		if err != nil {
			se.cancelAllPending()
			return
		}
		if c, ok := m.(wire.Cancel); ok {
			se.cancelPending(c.ID)
			continue
		}
		if id, ok := requestID(m); ok {
			se.trackPending(id)
		}
		select {
		case reqCh <- m:
		case <-se.ctx.Done(): // forced shutdown while the queue is full
			return
		}
	}
}

// execLoop handles requests serially until the connection breaks or the
// server drains. On drain, queued requests are refused with
// CodeShutdown before the connection closes.
func (se *session) execLoop(reqCh <-chan wire.Msg) {
	for {
		// Drain wins over queued work: once Shutdown signals, requests
		// that have not started are refused, not raced against the signal.
		select {
		case <-se.drain:
			se.refuseQueued(reqCh)
			se.conn.Close() // unblocks the reader; it closes reqCh
			for range reqCh {
			}
			return
		default:
		}
		select {
		case m, ok := <-reqCh:
			if !ok {
				return
			}
			se.handle(m)
			if se.werr != nil {
				return
			}
		case <-se.drain:
			se.refuseQueued(reqCh)
			se.conn.Close()
			for range reqCh {
			}
			return
		}
	}
}

// refuseQueued answers every request already sitting in the queue with
// CodeShutdown, without blocking for more.
func (se *session) refuseQueued(reqCh <-chan wire.Msg) {
	for {
		select {
		case m, ok := <-reqCh:
			if !ok {
				return
			}
			if id, ok := requestID(m); ok {
				se.respond(id, wire.Error{ID: id, Code: wire.CodeShutdown, Message: "server shutting down"})
			}
		default:
			return
		}
	}
}

// requestID extracts the ID of a request that will receive a response.
// CopyData/CopyEnd continue the CopyBegin request and are excluded.
func requestID(m wire.Msg) (uint64, bool) {
	switch m := m.(type) {
	case wire.Query:
		return m.ID, true
	case wire.Prepare:
		return m.ID, true
	case wire.ExecStmt:
		return m.ID, true
	case wire.CloseStmt:
		return m.ID, true
	case wire.CopyBegin:
		return m.ID, true
	case wire.Explain:
		return m.ID, true
	case wire.TableStats:
		return m.ID, true
	case wire.Ping:
		return m.ID, true
	case wire.ListTables:
		return m.ID, true
	case wire.Trace:
		return m.ID, true
	case wire.ServerStats:
		return m.ID, true
	}
	return 0, false
}

// trackPending registers a request the moment the reader accepts it, so
// a Cancel racing ahead of execution is not lost. Copy continuation
// frames keep the CopyBegin entry.
func (se *session) trackPending(id uint64) {
	se.mu.Lock()
	if _, ok := se.pending[id]; !ok {
		se.pending[id] = &reqState{}
	}
	se.mu.Unlock()
}

// cancelPending handles a Cancel frame: mark the request, and if it is
// already executing, cancel its context.
func (se *session) cancelPending(id uint64) {
	se.mu.Lock()
	if st := se.pending[id]; st != nil {
		st.cancelled = true
		if st.cancel != nil {
			st.cancel()
		}
	}
	se.mu.Unlock()
}

// cancelAllPending aborts everything on disconnect.
func (se *session) cancelAllPending() {
	se.mu.Lock()
	for _, st := range se.pending {
		st.cancelled = true
		if st.cancel != nil {
			st.cancel()
		}
	}
	se.mu.Unlock()
}

// begin creates the request context (deadline from the client's
// TimeoutMS capped by MaxQueryTime) and arms the pending entry's cancel
// hook. It reports false if the request was cancelled while queued.
func (se *session) begin(id uint64, timeoutMS uint64) (context.Context, context.CancelFunc, bool) {
	timeout := time.Duration(0)
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	if max := se.srv.cfg.MaxQueryTime; max > 0 && (timeout == 0 || max < timeout) {
		timeout = max
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	st := se.pending[id]
	if st == nil {
		st = &reqState{}
		se.pending[id] = st
	}
	if st.cancelled {
		return nil, nil, false
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(se.ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(se.ctx)
	}
	st.cancel = cancel
	return ctx, cancel, true
}

// respond removes the pending entry and writes the response. All
// responses funnel through here so the entry lifetime is airtight.
func (se *session) respond(id uint64, m wire.Msg) {
	se.mu.Lock()
	delete(se.pending, id)
	se.mu.Unlock()
	se.send(m)
}

// send writes one frame; after the first write error the session is
// poisoned and further sends are dropped.
func (se *session) send(m wire.Msg) bool {
	if se.werr != nil {
		return false
	}
	if err := se.w.Write(m); err != nil {
		se.werr = err
		return false
	}
	return true
}

func (se *session) fail(id uint64, code, format string, args ...any) {
	se.srv.met.errors.With(code).Add(1)
	se.respond(id, wire.Error{ID: id, Code: code, Message: fmt.Sprintf(format, args...)})
}

// errCode maps an execution error to its wire code.
func errCode(err error) string {
	switch {
	case errors.Is(err, errQueueTimeout):
		return wire.CodeQueueTimeout
	case errors.Is(err, context.DeadlineExceeded):
		return wire.CodeDeadline
	case errors.Is(err, context.Canceled):
		return wire.CodeCanceled
	default:
		return wire.CodeSQL
	}
}

// queryOptions maps the wire options onto the session API's functional
// options. Zero values select the API defaults, so only the overrides
// are materialized.
func queryOptions(o wire.ExecOptions) []audb.QueryOption {
	var opts []audb.QueryOption
	if o.Engine != 0 {
		opts = append(opts, audb.WithEngine(audb.Engine(o.Engine)))
	}
	if o.Workers != 0 {
		opts = append(opts, audb.WithWorkers(o.Workers))
	}
	if o.JoinCompression > 0 {
		opts = append(opts, audb.WithJoinCompression(o.JoinCompression))
	}
	if o.AggCompression > 0 {
		opts = append(opts, audb.WithAggCompression(o.AggCompression))
	}
	if o.OptimizerOff {
		opts = append(opts, audb.WithOptimizer(audb.OptimizerOff))
	}
	if o.CostOff {
		opts = append(opts, audb.WithCostModel(audb.CostOff))
	}
	if o.Materialized {
		opts = append(opts, audb.WithExecMode(audb.ExecMaterialized))
	}
	return opts
}

// handle dispatches one request. Unexpected message types poison the
// session (protocol error).
func (se *session) handle(m wire.Msg) {
	se.srv.met.requests.Add(1)
	switch m := m.(type) {
	case wire.Query:
		se.handleQuery(m)
	case wire.Prepare:
		se.handlePrepare(m)
	case wire.ExecStmt:
		se.handleExecStmt(m)
	case wire.CloseStmt:
		se.handleCloseStmt(m)
	case wire.CopyBegin:
		se.handleCopyBegin(m)
	case wire.CopyData:
		se.handleCopyData(m)
	case wire.CopyEnd:
		se.handleCopyEnd(m)
	case wire.Explain:
		se.handleExplain(m)
	case wire.TableStats:
		se.handleTableStats(m)
	case wire.Trace:
		se.handleTrace(m)
	case wire.ServerStats:
		se.respond(m.ID, wire.ServerStatsResult{ID: m.ID, Text: se.srv.StatsText()})
	case wire.Ping:
		se.respond(m.ID, wire.Pong{ID: m.ID})
	case wire.ListTables:
		se.respond(m.ID, wire.Tables{ID: m.ID, Names: se.srv.db.Tables()})
	default:
		se.send(wire.Error{Code: wire.CodeProto, Message: fmt.Sprintf("unexpected %s", wire.TypeName(wire.Type(m)))})
		se.werr = errors.New("protocol error")
	}
}

// execute runs fn under admission control and the request context; it
// is the shared body of Query, ExecStmt and ExplainAnalyze. One request
// in every Config.TraceSample gets a server span (admission wait +
// execution) recorded into the ring ServerStats reports; the untraced
// rest pay only nil-span checks.
func (se *session) execute(id uint64, timeoutMS uint64, fn func(ctx context.Context) (wire.Msg, error)) {
	var sp *obs.Span
	if se.srv.rec.Sample() {
		sp = obs.StartSpan("request")
		sp.SetInt("id", int64(id))
	}
	ctx, cancel, ok := se.begin(id, timeoutMS)
	if !ok {
		se.fail(id, wire.CodeCanceled, "request cancelled before execution")
		return
	}
	defer cancel()
	wait := sp.StartChild("admission.wait")
	err := se.acquireSlot(ctx)
	wait.End()
	if err != nil {
		se.fail(id, errCode(err), "%v", err)
		return
	}
	se.srv.inFlight.Add(1)
	ex := sp.StartChild("execute")
	resp, err := fn(ctx)
	ex.End()
	se.srv.inFlight.Add(-1)
	se.srv.release()
	if sp != nil {
		if err != nil {
			sp.SetAttr("error", errCode(err))
		}
		sp.End()
		se.srv.rec.Record(sp)
	}
	if err != nil {
		se.fail(id, errCode(err), "%v", err)
		return
	}
	se.respond(id, resp)
}

func (se *session) acquireSlot(ctx context.Context) error { return se.srv.acquire(ctx) }

func (se *session) handleQuery(m wire.Query) {
	se.execute(m.ID, m.Opts.TimeoutMS, func(ctx context.Context) (wire.Msg, error) {
		res, err := se.srv.db.QueryContext(ctx, m.SQL, queryOptions(m.Opts)...)
		if err != nil {
			return nil, err
		}
		return wire.Result{ID: m.ID, Rel: res}, nil
	})
}

func (se *session) handlePrepare(m wire.Prepare) {
	st, err := se.srv.db.Prepare(m.SQL)
	if err != nil {
		se.fail(m.ID, wire.CodeSQL, "%v", err)
		return
	}
	se.nextStmt++
	h := se.nextStmt
	se.stmts[h] = st
	se.respond(m.ID, wire.PrepareOK{ID: m.ID, Stmt: h})
}

func (se *session) handleExecStmt(m wire.ExecStmt) {
	st := se.stmts[m.Stmt]
	if st == nil {
		se.fail(m.ID, wire.CodeUnknownStmt, "unknown statement handle %d", m.Stmt)
		return
	}
	se.execute(m.ID, m.Opts.TimeoutMS, func(ctx context.Context) (wire.Msg, error) {
		res, err := st.Exec(ctx, queryOptions(m.Opts)...)
		if err != nil {
			return nil, err
		}
		return wire.Result{ID: m.ID, Rel: res}, nil
	})
}

func (se *session) handleCloseStmt(m wire.CloseStmt) {
	if _, ok := se.stmts[m.Stmt]; !ok {
		se.fail(m.ID, wire.CodeUnknownStmt, "unknown statement handle %d", m.Stmt)
		return
	}
	delete(se.stmts, m.Stmt)
	se.respond(m.ID, wire.OK{ID: m.ID})
}

func (se *session) handleExplain(m wire.Explain) {
	if !m.Analyze {
		// Plain Explain never executes; no admission slot, no deadline.
		exp, err := se.srv.db.Explain(m.SQL, queryOptions(m.Opts)...)
		if err != nil {
			se.fail(m.ID, wire.CodeSQL, "%v", err)
			return
		}
		se.respond(m.ID, wire.ExplainResult{ID: m.ID, Text: exp.String()})
		return
	}
	se.execute(m.ID, m.Opts.TimeoutMS, func(ctx context.Context) (wire.Msg, error) {
		exp, err := se.srv.db.ExplainAnalyze(ctx, m.SQL, queryOptions(m.Opts)...)
		if err != nil {
			return nil, err
		}
		return wire.ExplainResult{ID: m.ID, Text: exp.String()}, nil
	})
}

// handleTrace runs Database.Trace under the same admission control and
// deadline handling as a Query, wrapping the database's lifecycle trace
// in server spans: the admission-queue wait before it, and a wire-encode
// span measuring the result's encoded size after it. Explicit traces
// bypass sampling — the full span tree is always recorded and returned.
func (se *session) handleTrace(m wire.Trace) {
	ctx, cancel, ok := se.begin(m.ID, m.Opts.TimeoutMS)
	if !ok {
		se.fail(m.ID, wire.CodeCanceled, "request cancelled before execution")
		return
	}
	defer cancel()
	root := obs.StartSpan("request")
	root.SetInt("id", int64(m.ID))
	wait := root.StartChild("admission.wait")
	if err := se.acquireSlot(ctx); err != nil {
		se.fail(m.ID, errCode(err), "%v", err)
		return
	}
	wait.End()
	se.srv.inFlight.Add(1)
	qt, err := se.srv.db.Trace(ctx, m.SQL, queryOptions(m.Opts)...)
	se.srv.inFlight.Add(-1)
	se.srv.release()
	if err != nil {
		se.fail(m.ID, errCode(err), "%v", err)
		return
	}
	root.Attach(qt.Root)
	enc := root.StartChild("wire.encode")
	encoded := len(wire.AppendRelation(nil, qt.Result))
	enc.End()
	enc.SetInt("bytes", int64(encoded))
	root.End()
	se.srv.rec.Record(root)
	se.respond(m.ID, wire.TraceResult{ID: m.ID, Text: root.String()})
}

func (se *session) handleTableStats(m wire.TableStats) {
	var ts *audb.TableStats
	var err error
	if m.Analyze {
		ts, err = se.srv.db.Analyze(m.Table)
	} else {
		ts, err = se.srv.db.TableStats(m.Table)
	}
	if err != nil {
		se.fail(m.ID, wire.CodeSQL, "%v", err)
		return
	}
	se.respond(m.ID, wire.StatsResult{ID: m.ID, Text: ts.String()})
}

// ------------------------------------------------------------- ingest --

func (se *session) handleCopyBegin(m wire.CopyBegin) {
	if se.cp != nil {
		se.fail(m.ID, wire.CodeProto, "copy already in progress (table %q)", se.cp.table)
		return
	}
	if m.Table == "" || len(m.Cols) == 0 {
		se.fail(m.ID, wire.CodeProto, "copy needs a table name and at least one column")
		return
	}
	ctx, cancel, ok := se.begin(m.ID, 0)
	if !ok {
		se.fail(m.ID, wire.CodeCanceled, "request cancelled before execution")
		return
	}
	se.cp = &copyState{
		id:     m.ID,
		table:  m.Table,
		ld:     se.srv.db.NewLoader(m.Table, m.Cols...),
		ctx:    ctx,
		cancel: cancel,
		poll:   ctxpoll.New(ctx),
	}
	if se.srv.rec.Sample() {
		se.cp.sp = obs.StartSpan("copy")
		se.cp.sp.SetAttr("table", m.Table)
	}
}

// failCopy answers the copy request with an error and marks the stream
// failed; further chunks are dropped until CopyEnd clears the state.
func (se *session) failCopy(code, format string, args ...any) {
	se.fail(se.cp.id, code, format, args...)
	se.cp.failed = true
}

func (se *session) handleCopyData(m wire.CopyData) {
	cp := se.cp
	if cp == nil || m.ID != cp.id {
		se.fail(m.ID, wire.CodeProto, "copy data without a matching CopyBegin")
		return
	}
	if cp.failed {
		return
	}
	arity := cp.ld.Arity()
	for _, t := range m.Tuples {
		if err := cp.poll.Due(); err != nil {
			se.failCopy(errCode(err), "copy aborted: %v", err)
			return
		}
		if len(t.Vals) != arity {
			se.failCopy(wire.CodeProto, "copy tuple has %d values, table %q has %d columns", len(t.Vals), cp.table, arity)
			return
		}
		cp.ld.Add(t.Vals, t.M)
		se.srv.met.copyTuples.Add(1)
	}
}

func (se *session) handleCopyEnd(m wire.CopyEnd) {
	cp := se.cp
	if cp == nil || m.ID != cp.id {
		se.fail(m.ID, wire.CodeProto, "copy end without a matching CopyBegin")
		return
	}
	se.cp = nil
	aborted := cp.ctx.Err()
	cp.cancel()
	if cp.sp != nil {
		cp.sp.SetInt("tuples", int64(cp.ld.Len()))
		switch {
		case cp.failed:
			cp.sp.SetAttr("error", "failed")
		case aborted != nil:
			cp.sp.SetAttr("error", errCode(aborted))
		}
		cp.sp.End()
		se.srv.rec.Record(cp.sp)
	}
	if cp.failed {
		return // already answered with the failure
	}
	if err := aborted; err != nil {
		se.fail(cp.id, errCode(err), "copy aborted: %v", err)
		return
	}
	cp.ld.Commit()
	se.respond(cp.id, wire.CopyOK{ID: cp.id, Rows: uint64(cp.ld.Len())})
}
