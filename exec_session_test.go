package audb

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

// TestExecModeEquivalence is the session-level acceptance property of the
// physical layer: for a random query corpus, WithExecMode(ExecPipelined)
// and WithExecMode(ExecMaterialized) produce bit-identical results on all
// three engines (the deterministic engines ignore the mode but must not
// misbehave under it), serial and parallel, prepared and unprepared.
func TestExecModeEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 5
	if testing.Short() {
		trials = 2
	}
	engines := []Engine{EngineNative, EngineRewrite, EngineSGW}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*613 + 17)))
		db := randomDB(rng, 2+rng.Intn(6))
		for _, q := range optCorpus(rng) {
			for _, eng := range engines {
				for _, workers := range []int{1, 4} {
					mat, errM := db.QueryContext(ctx, q,
						WithEngine(eng), WithWorkers(workers), WithExecMode(ExecMaterialized))
					pipe, errP := db.QueryContext(ctx, q,
						WithEngine(eng), WithWorkers(workers), WithExecMode(ExecPipelined))
					if (errM == nil) != (errP == nil) {
						t.Fatalf("[trial %d] %s [%s workers=%d]: exec mode changed acceptance: mat=%v pipe=%v",
							trial, q, eng, workers, errM, errP)
					}
					if errM != nil {
						continue // e.g. DISTINCT on the rewrite middleware
					}
					if mat.Sort().String() != pipe.Sort().String() {
						t.Fatalf("[trial %d] %s [%s workers=%d]: exec mode changed the result:\n%s\nvs\n%s",
							trial, q, eng, workers, mat, pipe)
					}
				}
			}
			// Prepared execution composes with the mode option.
			stmt, err := db.Prepare(q)
			if err != nil {
				t.Fatalf("[trial %d] prepare %s: %v", trial, q, err)
			}
			want, err := stmt.Exec(ctx, WithExecMode(ExecMaterialized))
			if err != nil {
				continue
			}
			got, err := stmt.Exec(ctx, WithExecMode(ExecPipelined))
			if err != nil {
				t.Fatalf("[trial %d] %s: prepared pipelined: %v", trial, q, err)
			}
			if want.Sort().String() != got.Sort().String() {
				t.Fatalf("[trial %d] %s: prepared exec modes differ", trial, q)
			}
		}
	}
}

// TestPipelinedIsDefault: a plain QueryContext call must behave as
// WithExecMode(ExecPipelined).
func TestPipelinedIsDefault(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(77)), 6)
	q := `SELECT r.b, s.d FROM r, s WHERE r.a = s.c ORDER BY r.b LIMIT 4`
	def, err := db.QueryContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := db.QueryContext(ctx, q, WithExecMode(ExecPipelined))
	if err != nil {
		t.Fatal(err)
	}
	if def.Sort().String() != pipe.Sort().String() {
		t.Fatal("default execution differs from WithExecMode(ExecPipelined)")
	}
	if ExecPipelined.String() != "pipelined" || ExecMaterialized.String() != "materialized" {
		t.Fatal("ExecMode.String")
	}
	if m, err := ParseExecMode("materialized"); err != nil || m != ExecMaterialized {
		t.Fatalf("ParseExecMode(materialized) = %v, %v", m, err)
	}
	if m, err := ParseExecMode(""); err != nil || m != ExecPipelined {
		t.Fatalf("ParseExecMode(\"\") = %v, %v", m, err)
	}
	if _, err := ParseExecMode("bogus"); err == nil {
		t.Fatal("ParseExecMode(bogus) should error")
	}
}

// TestExplainAnalyze: the ANALYZE mode executes the query and attaches
// per-operator counters; the rendering includes the operator tree.
func TestExplainAnalyze(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(5)), 8)
	q := `SELECT r.b, s.d FROM r, s WHERE r.a = s.c AND r.b <= 3`
	exp, err := db.ExplainAnalyze(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats == nil || exp.Stats.Root == nil {
		t.Fatal("ExplainAnalyze returned no stats")
	}
	if exp.Stats.Mode != "pipelined" {
		t.Fatalf("default analyze mode = %q", exp.Stats.Mode)
	}
	if exp.Plan == "" || exp.Optimized == "" {
		t.Fatal("ExplainAnalyze lost the optimizer trace")
	}
	text := exp.String()
	for _, want := range []string{"execution: pipelined", "rep=", "rows=", "batches=", "vec=", "time="} {
		if !strings.Contains(text, want) {
			t.Fatalf("analyze rendering missing %q:\n%s", want, text)
		}
	}
	// Counter sanity: every operator reports the rows it emitted; the join
	// is a materialize point, the scans stream.
	if !strings.Contains(text, "materialize") || !strings.Contains(text, "stream") {
		t.Fatalf("expected both strategies in:\n%s", text)
	}

	// Materialized mode instruments the operator-at-a-time lowering.
	exp, err = db.ExplainAnalyze(ctx, q, WithExecMode(ExecMaterialized))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Stats.Mode != "materialized" {
		t.Fatalf("analyze mode = %q", exp.Stats.Mode)
	}

	// Optimizer off analyzes the raw plan.
	exp, err = db.ExplainAnalyze(ctx, q, WithOptimizer(OptimizerOff))
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rules) != 0 {
		t.Fatal("optimizer-off analyze should not report rules")
	}

	// Non-native engines are not instrumented.
	if _, err := db.ExplainAnalyze(ctx, q, WithEngine(EngineSGW)); err == nil {
		t.Fatal("ExplainAnalyze on EngineSGW should error")
	}
	// Compile errors propagate.
	if _, err := db.ExplainAnalyze(ctx, `SELECT nope FROM r`); err == nil {
		t.Fatal("unknown column should error")
	}
}

// TestExplainAnalyzeColumnar: over a sparse table, the trace reports the
// columnar batch representation and its selection-vector density (a scan
// emits full batches, density 1.00); WithRowBatches reverts every
// operator to rep=row.
func TestExplainAnalyzeColumnar(t *testing.T) {
	ctx := context.Background()
	db := randomDB(rand.New(rand.NewSource(12)), 12)
	if _, err := db.SetTableStorage("r", StorageForceSparse); err != nil {
		t.Fatal(err)
	}
	q := `SELECT a, b FROM r WHERE a <= 3`
	exp, err := db.ExplainAnalyze(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	text := exp.String()
	if !strings.Contains(text, "rep=col") || !strings.Contains(text, "vec=1.00") {
		t.Fatalf("sparse-scan trace missing columnar representation:\n%s", text)
	}
	exp, err = db.ExplainAnalyze(ctx, q, WithRowBatches(true))
	if err != nil {
		t.Fatal(err)
	}
	if text := exp.String(); strings.Contains(text, "rep=col") {
		t.Fatalf("WithRowBatches trace still reports columnar batches:\n%s", text)
	}
}

// TestRowBatchesEquivalence: the legacy row-at-a-time representation
// (WithRowBatches) is bit-identical to the default columnar pipeline over
// sparse and mixed storage, serial and parallel.
func TestRowBatchesEquivalence(t *testing.T) {
	ctx := context.Background()
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial*421 + 3)))
		db := randomDB(rng, 2+rng.Intn(6))
		if _, err := db.SetTableStorage("r", StorageForceSparse); err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			if _, err := db.SetTableStorage("s", StorageForceSparse); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range optCorpus(rng) {
			for _, workers := range []int{1, 4} {
				col, errC := db.QueryContext(ctx, q, WithWorkers(workers))
				row, errR := db.QueryContext(ctx, q, WithWorkers(workers), WithRowBatches(true))
				if (errC == nil) != (errR == nil) {
					t.Fatalf("[trial %d] %s [workers=%d]: representation changed acceptance: col=%v row=%v",
						trial, q, workers, errC, errR)
				}
				if errC != nil {
					continue
				}
				if col.Sort().String() != row.Sort().String() {
					t.Fatalf("[trial %d] %s [workers=%d]: representation changed the result:\n%s\nvs\n%s",
						trial, q, workers, col, row)
				}
			}
		}
	}
}
