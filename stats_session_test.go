package audb

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// statsTable builds an uncertain table with rows over a small key domain.
func statsTable(name string, rows, domain int, rng *rand.Rand) *UncertainTable {
	t := NewUncertainTable(name, "a0", "a1")
	for i := 0; i < rows; i++ {
		k := int64(rng.Intn(domain))
		t.AddRow(RangeRow{
			CertainOf(Int(k)),
			CertainOf(Int(int64(i))),
		}, CertainMult(1))
	}
	return t
}

// adversarialJoinDB: two big dense tables and a tiny selective one; the
// query below writes the worst join order first.
func adversarialJoinDB(rng *rand.Rand) *Database {
	db := New()
	db.Add(statsTable("big1", 300, 15, rng))
	db.Add(statsTable("big2", 300, 15, rng))
	db.Add(statsTable("tiny", 8, 8, rng))
	return db
}

const adversarialJoinQuery = `SELECT big1.a1, big2.a1, tiny.a1 FROM big1, big2, tiny ` +
	`WHERE big1.a0 = big2.a0 AND big2.a1 = tiny.a0 AND tiny.a1 <= 3`

// TestTableStatsLifecycle: statistics follow registration — collected on
// first use, dropped with the table, replaced on re-registration, and
// refreshed by Analyze after in-place mutation.
func TestTableStatsLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := New()
	tbl := statsTable("t", 50, 5, rng)
	db.Add(tbl)

	ts, err := db.TableStats("t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Rows != 50 || len(ts.Cols) != 2 || ts.Cols[0].NDV != 5 {
		t.Fatalf("collected stats off: %+v", ts)
	}
	// Case-folded lookup, like every other catalog surface.
	if _, err := db.TableStats("T"); err != nil {
		t.Fatalf("case-folded stats lookup: %v", err)
	}

	// In-place mutation is invisible until Analyze.
	tbl.AddRow(RangeRow{CertainOf(Int(99)), CertainOf(Int(99))}, CertainMult(1))
	ts, err = db.TableStats("t")
	if err != nil || ts.Rows != 50 {
		t.Fatalf("stats should be cached: %+v %v", ts, err)
	}
	ts, err = db.Analyze("t")
	if err != nil || ts.Rows != 51 {
		t.Fatalf("Analyze should recollect: %+v %v", ts, err)
	}

	// Replacement registers fresh statistics.
	db.Add(statsTable("t", 7, 3, rng))
	ts, err = db.TableStats("t")
	if err != nil || ts.Rows != 7 {
		t.Fatalf("stats after replacement: %+v %v", ts, err)
	}

	// Dropped tables never serve statistics again.
	db.Drop("t")
	if _, err := db.TableStats("t"); err == nil {
		t.Fatal("stats served for a dropped table")
	}
	if _, err := db.Analyze("t"); err == nil {
		t.Fatal("Analyze succeeded for a dropped table")
	}
}

// TestStatsLifecycleRace races Register/Drop/Analyze against concurrent
// QueryContext calls (run under -race): the statistics lifecycle must be
// race-clean, queries must keep executing over their snapshots, and once
// a drop completes the registry must not serve that table's stats.
func TestStatsLifecycleRace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := adversarialJoinDB(rng)
	// Pre-built replacement tables so goroutines never mutate a shared
	// relation (only re-register different ones — the supported pattern).
	repl := make([]*UncertainTable, 4)
	for i := range repl {
		repl[i] = statsTable("big1", 100+i, 10, rng)
	}
	var mutators sync.WaitGroup
	for w := 0; w < 4; w++ {
		mutators.Add(1)
		go func(w int) {
			defer mutators.Done()
			for i := 0; i < 60; i++ {
				switch (w + i) % 4 {
				case 0:
					db.Add(repl[i%len(repl)])
				case 1:
					db.Analyze("big1") // may fail mid-drop; only races matter
				case 2:
					db.Drop("big1")
					db.Add(repl[(i+1)%len(repl)])
				default:
					db.TableStats("tiny")
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var queriers sync.WaitGroup
	queriers.Add(1)
	go func() {
		defer queriers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// The query races the re-registrations: it must either plan
			// and run against a consistent snapshot or fail cleanly with
			// an unknown-table error from a mid-drop snapshot.
			res, err := db.QueryContext(context.Background(), adversarialJoinQuery, WithWorkers(2))
			if err == nil && res == nil {
				t.Error("nil result without error")
				return
			}
		}
	}()
	mutators.Wait()
	close(stop)
	queriers.Wait()

	db.Drop("big1")
	if _, err := db.TableStats("big1"); err == nil {
		t.Fatal("stats served for a dropped table after the race")
	}
}

// TestExplainShowsEstimatesAndReorder: the EXPLAIN trace shows the
// reorder rule firing on an adversarial join order and renders every
// operator of the final plan with a row estimate.
func TestExplainShowsEstimatesAndReorder(t *testing.T) {
	db := adversarialJoinDB(rand.New(rand.NewSource(3)))
	exp, err := db.Explain(adversarialJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	reordered := false
	for _, r := range exp.Rules {
		if r.Rule == "reorder-joins" {
			reordered = true
		}
	}
	if !reordered {
		t.Fatalf("reorder-joins did not fire:\n%s", exp)
	}
	for i, line := range strings.Split(strings.TrimSpace(exp.Optimized), "\n") {
		if !strings.Contains(line, "(est ") {
			t.Fatalf("optimized plan line %d lacks an estimate: %q\n%s", i, line, exp.Optimized)
		}
	}
	if text := exp.String(); !strings.Contains(text, "reorder-joins") || !strings.Contains(text, "(est ") {
		t.Fatalf("rendered explanation lacks cost info:\n%s", text)
	}
	// Cost off: no estimates, no reorder.
	exp, err = db.Explain(adversarialJoinQuery, WithCostModel(CostOff))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(exp.Optimized, "(est ") {
		t.Fatalf("cost-off explanation still has estimates:\n%s", exp.Optimized)
	}
	for _, r := range exp.Rules {
		if r.Rule == "reorder-joins" {
			t.Fatal("reorder-joins fired with the cost model off")
		}
	}
}

// TestExplainAnalyzeShowsEstimates is the satellite regression: with the
// cost model on, EVERY operator row of the ExplainAnalyze trace carries
// an est value next to the actual rows; with it off, the column shows
// the "-" placeholder.
func TestExplainAnalyzeShowsEstimates(t *testing.T) {
	db := adversarialJoinDB(rand.New(rand.NewSource(5)))
	queries := []string{
		adversarialJoinQuery,
		`SELECT a0, sum(a1) AS s FROM big1 WHERE a1 <= 100 GROUP BY a0`,
		`SELECT a1 FROM big1 ORDER BY a1 LIMIT 5`,
		`SELECT DISTINCT a0 FROM tiny`,
	}
	for _, q := range queries {
		for _, em := range []ExecMode{ExecPipelined, ExecMaterialized} {
			exp, err := db.ExplainAnalyze(context.Background(), q, WithExecMode(em))
			if err != nil {
				t.Fatalf("%s (%s): %v", q, em, err)
			}
			if exp.Stats == nil || exp.Stats.Root == nil {
				t.Fatalf("%s (%s): no stats", q, em)
			}
			out := exp.Stats.String()
			lines := strings.Split(strings.TrimSpace(out), "\n")
			if len(lines) < 2 {
				t.Fatalf("%s (%s): no operator rows:\n%s", q, em, out)
			}
			for _, line := range lines[1:] { // skip the execution header
				if !strings.Contains(line, "est=") || strings.Contains(line, "est=-") {
					t.Fatalf("%s (%s): operator without estimate: %q\n%s", q, em, line, out)
				}
			}
		}
	}
	// Cost off: the est column renders the placeholder.
	exp, err := db.ExplainAnalyze(context.Background(), queries[1], WithCostModel(CostOff))
	if err != nil {
		t.Fatal(err)
	}
	if out := exp.Stats.String(); !strings.Contains(out, "est=-") {
		t.Fatalf("cost-off trace should show est=-:\n%s", out)
	}
}

// TestCostOnAdversarialJoinFaster is a coarse sanity check (not a
// benchmark): on the adversarial order, the cost-based plan must not
// produce a different answer. The actual >=5x speedup is measured by the
// cbo experiment (audbench -exp cbo) and BenchmarkJoinReorder.
func TestCostOnAdversarialJoinResultsIdentical(t *testing.T) {
	db := adversarialJoinDB(rand.New(rand.NewSource(9)))
	fmtRes := func(r *Result) string { return r.Sort().String() }
	off, err := db.QueryContext(context.Background(), adversarialJoinQuery, WithCostModel(CostOff))
	if err != nil {
		t.Fatal(err)
	}
	on, err := db.QueryContext(context.Background(), adversarialJoinQuery)
	if err != nil {
		t.Fatal(err)
	}
	if fmtRes(off) != fmtRes(on) {
		t.Fatal("cost-based plan changed the adversarial join's result")
	}
}
