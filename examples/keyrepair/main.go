// Key repair lens (Section 11.4 of the paper): a product catalog scraped
// from several sources violates its primary key — the same product id
// appears with conflicting prices and stock counts. Deterministic cleaning
// would pick one row per id and silently discard the conflict; the key
// repair lens picks a selected guess but keeps the space of repairs as
// attribute-level bounds, so downstream aggregates expose how much the
// cleaning heuristic could have mattered.
package main

import (
	"fmt"

	"github.com/audb/audb"
)

func main() {
	// The dirty catalog: ids 2 and 4 are violated.
	catalog := audb.NewTable("catalog", "id", "category", "price", "stock")
	catalog.AddRow(audb.Int(1), audb.Str("tools"), audb.Float(9.99), audb.Int(12))
	catalog.AddRow(audb.Int(2), audb.Str("tools"), audb.Float(24.50), audb.Int(3))
	catalog.AddRow(audb.Int(2), audb.Str("tools"), audb.Float(19.99), audb.Int(7)) // conflicting source
	catalog.AddRow(audb.Int(3), audb.Str("garden"), audb.Float(5.25), audb.Int(40))
	catalog.AddRow(audb.Int(4), audb.Str("garden"), audb.Float(13.00), audb.Int(0))
	catalog.AddRow(audb.Int(4), audb.Str("garden"), audb.Float(11.75), audb.Int(5)) // conflicting source
	catalog.AddRow(audb.Int(4), audb.Str("garden"), audb.Float(12.10), audb.Int(2)) // and another

	// Repair the key: one AU-tuple per id; the first row wins the
	// selected guess, the bounds cover every repair.
	repaired, err := audb.RepairKey(catalog, "id")
	if err != nil {
		panic(err)
	}
	fmt.Println("Repaired catalog (bounds cover every possible repair):")
	fmt.Println(repaired.Sort())

	db := audb.New()
	db.AddRelation("catalog", repaired)

	// Inventory value per category. The selected-guess column behaves
	// exactly like cleaning deterministically; the bounds reveal how far
	// any repair could move the answer.
	res, err := db.Query(`
		SELECT category, sum(price * stock) AS value, count(*) AS products
		FROM catalog GROUP BY category ORDER BY category`)
	if err != nil {
		panic(err)
	}
	fmt.Println("Inventory value per category under repair uncertainty:")
	fmt.Println(res)

	// A HAVING query on top of the aggregate — AU-DBs are closed under
	// RA_agg, so uncertainty keeps flowing.
	flagged, err := db.Query(`
		SELECT category, sum(price * stock) AS value
		FROM catalog GROUP BY category HAVING sum(price * stock) > 250`)
	if err != nil {
		panic(err)
	}
	fmt.Println("Categories possibly above the 250 threshold:")
	fmt.Println(flagged)
	fmt.Println("An annotation lower bound of 0 marks groups whose qualification")
	fmt.Println("depends on the repair; 1 marks certainly-qualifying groups.")
}
