// Sensor fleet with noisy and dropped readings. Temperature readings come
// from sensors with a known error band (attribute-level uncertainty), and
// some readings may be duplicated retransmissions (tuple-level
// uncertainty). The example builds the data as a block-independent x-table
// (Section 11.2 of the paper), translates it into an AU-DB, and runs a
// multi-aggregate monitoring query. On this small instance it also
// enumerates every possible world and verifies the bounds empirically —
// the library's bound-preservation guarantee (Corollary 2) made tangible.
package main

import (
	"context"
	"fmt"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
)

func main() {
	// readings(sensor, zone, temp): each reading is one block; noisy
	// readings carry alternatives, retransmissions are optional blocks.
	x := audb.NewXTable("sensor", "zone", "temp")
	add := func(block audb.XBlock) { x.AddBlock(block) }

	add(audb.XBlock{Alts: []audb.Row{{audb.Int(1), audb.Str("north"), audb.Int(21)}}})
	add(audb.XBlock{Alts: []audb.Row{ // sensor 2 wobbles between 18 and 20
		{audb.Int(2), audb.Str("north"), audb.Int(18)},
		{audb.Int(2), audb.Str("north"), audb.Int(20)},
	}})
	add(audb.XBlock{Alts: []audb.Row{{audb.Int(3), audb.Str("south"), audb.Int(31)}}})
	add(audb.XBlock{ // possible retransmission: may not exist at all
		Alts:     []audb.Row{{audb.Int(3), audb.Str("south"), audb.Int(31)}},
		Optional: true,
	})
	add(audb.XBlock{Alts: []audb.Row{ // sensor 4's zone tag is garbled
		{audb.Int(4), audb.Str("south"), audb.Int(26)},
		{audb.Int(4), audb.Str("north"), audb.Int(26)},
	}})

	db := audb.New()
	db.AddRelation("readings", audb.FromXTable(x))

	const q = `
		SELECT zone, count(*) AS sensors, min(temp) AS coldest,
		       max(temp) AS hottest, avg(temp) AS mean_temp
		FROM readings GROUP BY zone ORDER BY zone`
	res, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("Zone monitoring under sensor uncertainty:")
	fmt.Println(res)

	// Empirical check: evaluate the query in every possible world and
	// confirm each world's answer is covered by the AU-DB result.
	worldsList, err := x.Worlds(1000)
	if err != nil {
		panic(err)
	}
	plan, err := db.Plan(q)
	if err != nil {
		panic(err)
	}
	covered := 0
	for _, w := range worldsList {
		det, err := bag.Exec(context.Background(), plan, bag.DB{"readings": w})
		if err != nil {
			panic(err)
		}
		if res.BoundsWorld(det) {
			covered++
		}
	}
	fmt.Printf("possible worlds: %d, bounded by the AU-DB result: %d\n",
		len(worldsList), covered)

	// The middleware path (paper Section 10) gives the same answer.
	res2, err := db.QueryRewrite(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rewrite middleware agrees with the native engine: %v\n",
		sameSize(res, res2))
}

func sameSize(a, b *core.Relation) bool {
	return a.Len() == b.Len() && a.PossibleSize() == b.PossibleSize()
}
