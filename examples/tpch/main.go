// TPC-H under PDBench-style uncertainty: generates a scaled TPC-H
// database, injects attribute-level uncertainty the way PDBench does
// (random cells replaced by up to 8 alternatives), and runs TPC-H Q1 and
// the PDBench join query on three processing regimes: deterministic
// selected-guess processing, exact AU-DB semantics, and AU-DB with the
// paper's compression optimizations.
package main

import (
	"context"
	"fmt"
	"time"

	"github.com/audb/audb"
	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/tpch"
	"github.com/audb/audb/internal/translate"
)

func main() {
	ctx := context.Background()
	cfg := tpch.Config{Scale: 0.02, Seed: 42}
	det := tpch.Generate(cfg)
	fmt.Printf("generated TPC-H: %d lineitems, %d orders, %d customers\n",
		det["lineitem"].Size(), det["orders"].Size(), det["customer"].Size())

	xdb := tpch.InjectPDBench(det, 0.05, 0.25, 7)
	audb := translate.XDBAll(xdb)
	cat := ra.CatalogMap(det.Schemas())

	for _, name := range []string{"Q1", "PB2"} {
		plan, err := tpch.Compile(name, cat)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\n--- %s ---\n", name)

		start := time.Now()
		detRes, err := bag.Exec(ctx, plan, det)
		if err != nil {
			panic(err)
		}
		fmt.Printf("Det (SGQP):        %8s, %d rows\n", time.Since(start).Round(time.Microsecond), detRes.Len())

		start = time.Now()
		exact, err := core.Exec(ctx, plan, audb, core.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("AU-DB exact:       %8s, %d rows\n", time.Since(start).Round(time.Microsecond), exact.Len())

		start = time.Now()
		compressed, err := core.Exec(ctx, plan, audb, core.Options{JoinCompression: 64, AggCompression: 64})
		if err != nil {
			panic(err)
		}
		fmt.Printf("AU-DB compressed:  %8s, %d rows\n", time.Since(start).Round(time.Microsecond), compressed.Len())

		// The selected-guess world of every AU result equals the
		// deterministic answer — AU-DBs strictly generalize SGQP.
		if !exact.SGW().Equal(detRes) || !compressed.SGW().Equal(detRes) {
			panic("SGW mismatch: AU-DB must embed the deterministic result")
		}
		fmt.Println("SGW check: AU-DB results embed the deterministic answer exactly")
		if name == "Q1" {
			fmt.Println("sample of bounded aggregates:")
			fmt.Print(render(compressed, 3))
		}
	}
	_ = audb
}

func render(r *core.Relation, n int) string {
	s := r.Clone().Sort()
	if len(s.Tuples) > n {
		s.Tuples = s.Tuples[:n]
	}
	return s.String()
}

// Silence the unused import when editing the example.
var _ = audb.Int
