// Quickstart: the running example of the paper (Figure 1). Alice tracks
// COVID infection rates extracted from unreliable web sources: some rates
// are ambiguous intervals, some locale sizes conflict between sources, one
// size is entirely unknown. A conventional database forces her to pick one
// reading per cell and silently report misleading aggregates; an AU-DB
// keeps attribute-level bounds through the same SQL query.
package main

import (
	"fmt"

	"github.com/audb/audb"
)

func main() {
	// Build the locales table of Figure 1c: every uncertain cell carries
	// [lower bound / selected guess / upper bound].
	locales := audb.NewUncertainTable("locales", "locale", "rate", "size")

	locales.AddRow(audb.RangeRow{
		audb.CertainOf(audb.Str("Los Angeles")),
		audb.Range(audb.Float(3), audb.Float(3), audb.Float(4)), // conflicting sources: 3%..4%
		audb.CertainOf(audb.Str("metro")),
	}, audb.CertainMult(1))

	locales.AddRow(audb.RangeRow{
		audb.CertainOf(audb.Str("Austin")),
		audb.CertainOf(audb.Float(18)),
		audb.Range(audb.Str("city"), audb.Str("city"), audb.Str("metro")), // city or metro?
	}, audb.CertainMult(1))

	locales.AddCertainRow(audb.Str("Houston"), audb.Float(14), audb.Str("metro"))

	locales.AddRow(audb.RangeRow{
		audb.CertainOf(audb.Str("Berlin")),
		audb.Range(audb.Float(1), audb.Float(3), audb.Float(3)),
		audb.Range(audb.Str("city"), audb.Str("town"), audb.Str("town")),
	}, audb.CertainMult(1))

	locales.AddRow(audb.RangeRow{
		audb.CertainOf(audb.Str("Sacramento")),
		audb.CertainOf(audb.Float(1)),
		// The size is NULL in the source: completely unknown.
		audb.Range(audb.Str("city"), audb.Str("town"), audb.Str("village")),
	}, audb.CertainMult(1))

	locales.AddRow(audb.RangeRow{
		audb.CertainOf(audb.Str("Springfield")),
		audb.Range(audb.Float(0), audb.Float(5), audb.Float(100)), // null rate: anything
		audb.CertainOf(audb.Str("town")),
	}, audb.CertainMult(1))

	db := audb.New()
	db.Add(locales)

	// Alice's analysis, unchanged SQL.
	const q = `SELECT size, avg(rate) AS rate FROM locales GROUP BY size ORDER BY size`

	// 1. Conventional selected-guess query processing: one number per
	// group, all uncertainty silently discarded.
	sgw, err := db.QuerySGW(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("Selected-guess world only (what a normal DB reports):")
	fmt.Println(sgw)

	// 2. The same query over the AU-DB: every group keeps bounds on the
	// aggregate and a multiplicity triple saying whether the group
	// certainly exists.
	res, err := db.Query(q)
	if err != nil {
		panic(err)
	}
	fmt.Println("AU-DB result (bounds [lb/guess/ub], annotation (lb,sg,ub)):")
	fmt.Println(res.Sort())

	fmt.Println("Reading the first row: the metro group certainly exists;")
	fmt.Println("its average rate is guaranteed to lie within the printed bounds")
	fmt.Println("in every possible world, with the guess matching the SGW value.")
}
