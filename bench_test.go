package audb_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/audb/audb"

	"github.com/audb/audb/internal/bag"
	"github.com/audb/audb/internal/bench"
	"github.com/audb/audb/internal/core"
	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/ra"
	"github.com/audb/audb/internal/synth"
	"github.com/audb/audb/internal/translate"
)

// One benchmark per table/figure of the paper's evaluation. Each runs the
// corresponding experiment of the harness (quick sizes; `cmd/audbench
// -full` regenerates the full-size tables recorded in EXPERIMENTS.md).

func benchFigure(b *testing.B, id string) {
	e, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig10aPDBenchUncertainty(b *testing.B) { benchFigure(b, "fig10a") }
func BenchmarkFig10bPDBenchScale(b *testing.B)       { benchFigure(b, "fig10b") }
func BenchmarkFig11AggChain(b *testing.B)            { benchFigure(b, "fig11") }
func BenchmarkFig12TPCH(b *testing.B)                { benchFigure(b, "fig12") }
func BenchmarkFig13aGroupBy(b *testing.B)            { benchFigure(b, "fig13a") }
func BenchmarkFig13bAggFuncs(b *testing.B)           { benchFigure(b, "fig13b") }
func BenchmarkFig13cAttrRange(b *testing.B)          { benchFigure(b, "fig13c") }
func BenchmarkFig13dCompression(b *testing.B)        { benchFigure(b, "fig13d") }
func BenchmarkFig14JoinOpt(b *testing.B)             { benchFigure(b, "fig14") }
func BenchmarkFig15AggAccuracy(b *testing.B)         { benchFigure(b, "fig15") }
func BenchmarkFig16MultiJoin(b *testing.B)           { benchFigure(b, "fig16") }
func BenchmarkFig17RealWorld(b *testing.B)           { benchFigure(b, "fig17") }

// ---- operator micro-benchmarks ----------------------------------------

func microData(rows int, unc float64) (bag.DB, core.DB) {
	det := bag.DB{"t": synth.WideTable(rows, 6, 1000, 7)}
	x := synth.Inject(det, synth.InjectConfig{
		CellProb: unc, MaxAlts: 4, RangeFrac: 0.05, Seed: 8,
	})
	return det, core.DB{"t": translate.XDB(x["t"])}
}

func BenchmarkSelectDeterministic(b *testing.B) {
	det, _ := microData(20000, 0.05)
	plan := &ra.Select{Child: &ra.Scan{Table: "t"},
		Pred: expr.Lt(expr.Col(1, "a1"), expr.CInt(500))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bag.Exec(context.Background(), plan, det); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSelectAUDB(b *testing.B, workers int) {
	_, audbDB := microData(20000, 0.05)
	plan := &ra.Select{Child: &ra.Scan{Table: "t"},
		Pred: expr.Lt(expr.Col(1, "a1"), expr.CInt(500))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(context.Background(), plan, audbDB, core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// Serial (Workers: 1) vs parallel (Workers: 0 = one per CPU) pairs for the
// hot operators; identical results, different wall-clock.
func BenchmarkSelectAUDB(b *testing.B)         { benchSelectAUDB(b, 1) }
func BenchmarkSelectAUDBParallel(b *testing.B) { benchSelectAUDB(b, 0) }

func benchAggAUDB(b *testing.B, workers int) {
	_, audbDB := microData(20000, 0.05)
	plan := &ra.Agg{Child: &ra.Scan{Table: "t"}, GroupBy: []int{0},
		Aggs: []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "a1"), Name: "s"}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(context.Background(), plan, audbDB, core.Options{AggCompression: 64, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggAUDB(b *testing.B)         { benchAggAUDB(b, 1) }
func BenchmarkAggAUDBParallel(b *testing.B) { benchAggAUDB(b, 0) }

func benchJoin(b *testing.B, opts core.Options, rows int) {
	t1, t2 := synth.JoinPair(rows, int64(rows), 7)
	x := synth.Inject(bag.DB{"t1": t1, "t2": t2}, synth.InjectConfig{
		CellProb: 0.03, MaxAlts: 4, RangeFrac: 0.02, EligibleCols: []int{0, 1}, Seed: 8,
	})
	audbDB := core.DB{"t1": translate.XDB(x["t1"]), "t2": translate.XDB(x["t2"])}
	plan := &ra.Join{Left: &ra.Scan{Table: "t1"}, Right: &ra.Scan{Table: "t2"},
		Cond: expr.Eq(expr.Col(0, ""), expr.Col(2, ""))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Exec(context.Background(), plan, audbDB, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinAUDBExact(b *testing.B) { benchJoin(b, core.Options{Workers: 1}, 4000) }
func BenchmarkJoinAUDBExactParallel(b *testing.B) {
	benchJoin(b, core.Options{}, 4000)
}
func BenchmarkJoinAUDBCompressed(b *testing.B) {
	benchJoin(b, core.Options{JoinCompression: 32, Workers: 1}, 4000)
}
func BenchmarkJoinAUDBCompressedParallel(b *testing.B) {
	benchJoin(b, core.Options{JoinCompression: 32}, 4000)
}
func BenchmarkJoinAUDBNaive(b *testing.B) {
	benchJoin(b, core.Options{NaiveJoin: true, Workers: 1}, 1000)
}
func BenchmarkJoinAUDBNaiveParallel(b *testing.B) {
	benchJoin(b, core.Options{NaiveJoin: true}, 1000)
}

// BenchmarkQueryThroughput measures concurrent independent queries (each
// evaluated serially), the many-clients regime of the worker-pool design:
// parallelism across queries instead of within one.
func BenchmarkQueryThroughput(b *testing.B) {
	_, audbDB := microData(20000, 0.05)
	plan := &ra.Select{Child: &ra.Scan{Table: "t"},
		Pred: expr.Lt(expr.Col(1, "a1"), expr.CInt(500))}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := core.Exec(context.Background(), plan, audbDB, core.Options{Workers: 1}); err != nil {
				// b.Fatal must not run on a RunParallel worker goroutine.
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRewriteMiddleware(b *testing.B) {
	_, audbDB := microData(5000, 0.05)
	plan := &ra.Agg{Child: &ra.Scan{Table: "t"}, GroupBy: []int{0},
		Aggs: []ra.AggSpec{{Fn: ra.AggSum, Arg: expr.Col(1, "a1"), Name: "s"}}}
	db := audb.New()
	for name, rel := range audbDB {
		db.AddRelation(name, rel)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryPlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- session API micro-benchmarks -------------------------------------

// preparedBenchDB builds the small-table regime where the SQL front end
// is a visible fraction of each execution — the case Prepare exists for.
func preparedBenchDB() (*audb.Database, string) {
	det, _ := microData(256, 0.05)
	db := audb.New()
	db.AddRelation("t", core.FromDeterministic(det["t"]))
	db.SetOptions(audb.Options{Workers: 1})
	return db, `SELECT a0, sum(a1) AS s, count(*) AS n FROM t WHERE a2 > 10 GROUP BY a0`
}

// BenchmarkQueryUnprepared is the baseline: parse + plan + execute per
// call via the dispatcher.
func BenchmarkQueryUnprepared(b *testing.B) {
	db, q := preparedBenchDB()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryContext(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStmtExec measures the same query with the plan cached by
// Prepare; the delta against BenchmarkQueryUnprepared is the front-end
// cost a prepared statement amortizes away.
func BenchmarkStmtExec(b *testing.B) {
	db, q := preparedBenchDB()
	stmt, err := db.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stmt.Exec(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStmtExecConcurrent hammers one shared Stmt from all procs —
// the many-clients regime of a prepared statement.
func BenchmarkStmtExecConcurrent(b *testing.B) {
	db, q := preparedBenchDB()
	stmt, err := db.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := stmt.Exec(ctx); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkSQLCompile(b *testing.B) {
	det, _ := microData(10, 0)
	db := audb.New()
	db.AddRelation("t", core.FromDeterministic(det["t"]))
	q := `SELECT a0, sum(a1) AS s, count(*) AS c FROM t WHERE a2 > 10 GROUP BY a0 HAVING sum(a1) > 100 ORDER BY a0`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Plan(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateXDB(b *testing.B) {
	det := bag.DB{"t": synth.WideTable(20000, 6, 1000, 7)}
	x := synth.Inject(det, synth.InjectConfig{CellProb: 0.05, MaxAlts: 8, Seed: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = translate.XDB(x["t"])
	}
}

var benchSink fmt.Stringer

// ---- cost-based planning micro-benchmarks -----------------------------

// joinReorderDB builds the adversarial join-order workload of the cbo
// experiment at micro-benchmark size: two large dense tables written
// first, a tiny selective table last.
func joinReorderDB() (*audb.Database, string) {
	db := audb.New()
	t1, t2 := synth.JoinPair(1200, 75, 11)
	t3, _ := synth.JoinPair(12, 12, 12)
	db.AddRelation("t1", core.FromDeterministic(t1))
	db.AddRelation("t2", core.FromDeterministic(t2))
	db.AddRelation("t3", core.FromDeterministic(t3))
	q := `SELECT t1.a1, t2.a1, t3.a1 FROM t1, t2, t3 ` +
		`WHERE t1.a0 = t2.a0 AND t2.a1 = t3.a0 AND t3.a1 <= 6`
	return db, q
}

func benchJoinReorder(b *testing.B, cost audb.CostModel) {
	db, q := joinReorderDB()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.QueryContext(ctx, q, audb.WithCostModel(cost)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinReorderCostOn/CostOff measure the cost-based planner on an
// adversarial 3-table join order (the `cbo` experiment's shape); CostOff
// runs the rule-optimized plan in the written order.
func BenchmarkJoinReorderCostOn(b *testing.B)  { benchJoinReorder(b, audb.CostOn) }
func BenchmarkJoinReorderCostOff(b *testing.B) { benchJoinReorder(b, audb.CostOff) }

// BenchmarkJoinReorderPlanOnly isolates the planning overhead the cost
// pass adds per execution (statistics are cached; the pass is tree work).
func BenchmarkJoinReorderPlanOnly(b *testing.B) {
	db, q := joinReorderDB()
	exp, err := db.Explain(q)
	if err != nil {
		b.Fatal(err)
	}
	benchSink = exp
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := db.Explain(q)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = e
	}
}
