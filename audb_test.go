package audb

import (
	"strings"
	"testing"

	"github.com/audb/audb/internal/expr"
	"github.com/audb/audb/internal/types"
)

func covidDB(t *testing.T) *Database {
	t.Helper()
	locales := NewUncertainTable("locales", "locale", "rate", "size")
	locales.AddRow(RangeRow{
		CertainOf(Str("Los Angeles")),
		Range(Float(3), Float(3), Float(4)),
		CertainOf(Str("metro")),
	}, CertainMult(1))
	locales.AddCertainRow(Str("Houston"), Float(14), Str("metro"))
	locales.AddRow(RangeRow{
		CertainOf(Str("Austin")),
		CertainOf(Float(18)),
		Range(Str("city"), Str("city"), Str("metro")),
	}, CertainMult(1))
	db := New()
	db.Add(locales)
	return db
}

func TestQueryQuickstart(t *testing.T) {
	db := covidDB(t)
	res, err := db.Query(`SELECT size, avg(rate) AS rate FROM locales GROUP BY size`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("groups: %d\n%s", res.Len(), res)
	}
	// The metro group certainly exists; its SG average is 8.5.
	var found bool
	for _, tup := range res.Tuples {
		if tup.Vals[0].SG.AsString() == "metro" {
			found = true
			if tup.M.Lo < 1 {
				t.Errorf("metro group should be certain: %v", tup.M)
			}
			if tup.Vals[1].SG.AsFloat() != 8.5 {
				t.Errorf("metro SG average %v", tup.Vals[1])
			}
			if !types.Less(tup.Vals[1].Lo, tup.Vals[1].Hi) {
				t.Errorf("metro average should be uncertain: %v", tup.Vals[1])
			}
		}
	}
	if !found {
		t.Fatal("no metro group")
	}
}

func TestQueryPathsAgree(t *testing.T) {
	db := covidDB(t)
	q := `SELECT size, count(*) AS n FROM locales GROUP BY size`
	native, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := db.QueryRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if native.Len() != rewritten.Len() || native.PossibleSize() != rewritten.PossibleSize() {
		t.Fatalf("paths disagree:\n%s\nvs\n%s", native, rewritten)
	}
	sgw, err := db.QuerySGW(q)
	if err != nil {
		t.Fatal(err)
	}
	if !native.SGW().Equal(sgw) {
		t.Fatal("SGW embedding broken")
	}
}

func TestDeterministicTables(t *testing.T) {
	db := New()
	tbl := NewTable("t", "a", "b").
		AddRow(Int(1), Str("x")).
		AddRow(Int(2), Str("y"))
	db.AddDeterministic(tbl)
	res, err := db.Query(`SELECT a FROM t WHERE b = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples[0].M != CertainMult(1) {
		t.Fatalf("deterministic query:\n%s", res)
	}
	if tbl.Rel().Len() != 2 {
		t.Error("Rel accessor")
	}
}

func TestRepairKeyAPI(t *testing.T) {
	tbl := NewTable("c", "id", "v").
		AddRow(Int(1), Int(10)).
		AddRow(Int(1), Int(30)).
		AddRow(Int(2), Int(5))
	rel, err := RepairKey(tbl, "id")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("repairs:\n%s", rel)
	}
	if _, err := RepairKey(tbl, "nope"); err == nil {
		t.Error("unknown key column should error")
	}
}

func TestUncertainInputModels(t *testing.T) {
	x := NewXTable("k", "v")
	x.AddBlock(XBlock{Alts: []Row{{Int(1), Int(10)}, {Int(1), Int(20)}}})
	au := FromXTable(x)
	if au.Len() != 1 {
		t.Fatal("x translation")
	}
	ti := NewXTable("k")
	ti.AddBlock(XBlock{Alts: []Row{{Int(1)}}, Probs: []float64{0.4}})
	rel, err := FromTITable(ti)
	if err != nil || rel.Len() != 1 {
		t.Fatalf("TI translation: %v", err)
	}
	if _, err := FromTITable(x); err == nil {
		t.Error("multi-alternative TI should error")
	}
	ct := &CTable{}
	ct.Schema = x.Schema
	if _, err := FromCTable(ct, 10); err == nil {
		// Empty C-table has one (empty) valuation and no rows; either an
		// empty relation or an error is acceptable; just don't panic.
		_ = err
	}
	v := MakeUncertain(Int(1), Int(2), Int(3))
	if !v.Valid() {
		t.Error("MakeUncertain")
	}
}

func TestValuesAndMultiplicities(t *testing.T) {
	if Int(1).AsInt() != 1 || Float(1.5).AsFloat() != 1.5 || Str("s").AsString() != "s" {
		t.Error("constructors")
	}
	if !Bool(true).AsBool() || !Null().IsNull() {
		t.Error("bool/null")
	}
	if !types.Less(NegInfinity(), PosInfinity()) {
		t.Error("infinities")
	}
	if CertainMult(2) != (Multiplicity{Lo: 2, SG: 2, Hi: 2}) {
		t.Error("CertainMult")
	}
	if MaybeMult() != (Multiplicity{Lo: 0, SG: 1, Hi: 1}) {
		t.Error("MaybeMult")
	}
	if Mult(0, 1, 2) != (Multiplicity{Lo: 0, SG: 1, Hi: 2}) {
		t.Error("Mult")
	}
	fr := FullRange(Int(5))
	if !fr.Contains(Str("zzz")) {
		t.Error("FullRange")
	}
}

func TestErrorsSurface(t *testing.T) {
	db := New()
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Error("missing table")
	}
	if _, err := db.Query("NOT SQL AT ALL"); err == nil {
		t.Error("parse error")
	}
	if _, err := db.QueryRewrite("SELECT"); err == nil {
		t.Error("rewrite parse error")
	}
	if _, err := db.QuerySGW("SELECT"); err == nil {
		t.Error("sgw parse error")
	}
	if _, err := db.Relation("missing"); err == nil {
		t.Error("missing relation")
	}
	// DISTINCT through the middleware is rejected with a helpful message.
	tbl := NewUncertainTable("t", "a")
	tbl.AddCertainRow(Int(1))
	db.Add(tbl)
	_, err := db.QueryRewrite("SELECT DISTINCT a FROM t")
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Errorf("distinct rewrite: %v", err)
	}
	// ... but works on the native engine.
	if _, err := db.Query("SELECT DISTINCT a FROM t"); err != nil {
		t.Errorf("native distinct: %v", err)
	}
}

func TestOptionsAndPlan(t *testing.T) {
	db := covidDB(t)
	db.SetOptions(Options{JoinCompression: 8, AggCompression: 8})
	res, err := db.Query(`SELECT size, sum(rate) AS s FROM locales GROUP BY size`)
	if err != nil || res.Len() == 0 {
		t.Fatalf("compressed query: %v", err)
	}
	plan, err := db.Plan(`SELECT locale FROM locales WHERE rate > 10`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.QueryPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("plan query")
	}
	rel, err := db.Relation("locales")
	if err != nil || rel.Len() != 3 {
		t.Fatal("Relation accessor")
	}
	// Direct expression use through the public surface.
	e := expr.Gt(expr.Col(0, "x"), expr.CInt(1))
	if e.String() == "" {
		t.Error("expr rendering")
	}
}
