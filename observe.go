package audb

import (
	"context"
	"errors"
	"time"

	"github.com/audb/audb/internal/obs"
)

// This file is the session layer's observability surface: per-database
// metrics (queries by engine and exec mode, latency, prepared-statement
// cache hits, optimizer rule hit counts) and the query hook behind
// audbd's slow-query log. The instrumentation is always compiled in;
// when nothing is listening it costs a handful of atomic updates per
// query and zero allocations (gated by TestObsDisabledZeroAlloc).

// QueryInfo describes one completed query, delivered to the hook
// installed with SetQueryHook.
type QueryInfo = obs.QueryInfo

// dbMetrics holds the Database's pre-resolved metric handles so the
// dispatch hot path performs only atomic updates — no name lookups.
type dbMetrics struct {
	reg      *obs.Registry
	engines  [3]*obs.Counter // queries by engine, indexed by Engine
	modes    [2]*obs.Counter // native queries by exec mode (pipelined, materialized)
	errors   *obs.Counter
	latency  *obs.Histogram
	stmtHits *obs.Counter // prepared-statement optimized-plan cache
	stmtMiss *obs.Counter
	rules    *obs.CounterVec // optimizer rule hit counts
	onRule   func(string)    // pre-bound so passing it allocates nothing
}

func newDBMetrics() *dbMetrics {
	reg := obs.NewRegistry()
	m := &dbMetrics{reg: reg}
	queries := reg.CounterVec("audb_queries_total", "queries dispatched, by engine", "engine")
	for e := EngineNative; e <= EngineSGW; e++ {
		m.engines[e] = queries.With(e.String())
	}
	native := reg.CounterVec("audb_native_exec_total", "native-engine executions, by physical mode", "mode")
	m.modes[0] = native.With(ExecPipelined.String())
	m.modes[1] = native.With(ExecMaterialized.String())
	m.errors = reg.Counter("audb_query_errors_total", "queries that returned an error")
	m.latency = reg.Histogram("audb_query_seconds", "query wall time inside dispatch")
	m.stmtHits = reg.Counter("audb_stmt_cache_hits_total", "prepared-statement optimized-plan cache hits")
	m.stmtMiss = reg.Counter("audb_stmt_cache_misses_total", "prepared-statement optimized-plan cache misses")
	m.rules = reg.CounterVec("audb_opt_rule_hits_total", "effective optimizer rule applications", "rule")
	m.onRule = func(rule string) { m.rules.With(rule).Add(1) }
	return m
}

// record updates the per-query counters. Allocation-free.
func (m *dbMetrics) record(cfg queryConfig, d time.Duration, err error) {
	if e := int(cfg.engine); e >= 0 && e < len(m.engines) {
		m.engines[e].Add(1)
	}
	if cfg.engine == EngineNative {
		mode := 0
		if cfg.execMode == ExecMaterialized {
			mode = 1
		}
		m.modes[mode].Add(1)
	}
	if err != nil {
		m.errors.Add(1)
	}
	m.latency.Observe(d)
}

// Metrics returns the database's metric registry — queries by engine
// and exec mode, query latency, prepared-statement cache hit rates,
// optimizer rule hit counts, and table-statistics collection counters.
// Serve it over HTTP with obs.Handler, or render it with Snapshot.
func (d *Database) Metrics() *obs.Registry {
	return d.met.reg
}

// SetQueryHook installs a function invoked after every query dispatch
// with the query's vitals (fingerprint, engine, duration, rows,
// est-vs-actual cardinality, error code). audbd uses this for its
// slow-query log (obs.SlowQueryHook). A nil hook (the default) costs
// one atomic load per query; assembling QueryInfo (fingerprinting the
// statement) is only done while a hook is installed. The hook runs on
// the query's goroutine — keep it fast or hand off.
func (d *Database) SetQueryHook(hook func(QueryInfo)) {
	d.hook.Store(&hook)
}

func (d *Database) queryHook() func(QueryInfo) {
	p, _ := d.hook.Load().(*func(QueryInfo))
	if p == nil {
		return nil
	}
	return *p
}

// errCodeOf classifies an in-process query error with the same stable
// names the wire protocol uses, so in-process and server-side
// slow-query logs aggregate together.
func errCodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "sql"
	}
}
